// Package jaguar implements the Jaguar programming language: the small,
// strongly typed, portable source language in which users write UDFs
// (the role Java plays in the paper). Jaguar source compiles to Jaguar
// VM bytecode (package jvm), which is verified at load time; the same
// compiled class runs unchanged at the client or the server (§6.4).
//
// The language is deliberately Java-flavoured:
//
//	func invest_val(history bytes) float {
//	    var sum int = 0;
//	    var i int = 0;
//	    while (i < len(history)) {
//	        sum = sum + history[i];
//	        i = i + 1;
//	    }
//	    return float(sum) / float(len(history));
//	}
//
// Types: int (64-bit), float (64-bit), bool, str, bytes. Booleans are
// a distinct language type (lowered to VM ints). Built-ins: len, bnew,
// byte-array indexing, casts int()/float(), and the native bridge
// cb_size/cb_get/cb_read/cb_touch/log/time.
package jaguar

import "fmt"

// TokKind identifies a lexical token class.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStrLit

	// Keywords.
	TokFunc
	TokVar
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokTrue
	TokFalse
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokEq // ==
	TokNe // !=
	TokLt
	TokLe
	TokGt
	TokGe
	TokAnd // &&
	TokOr  // ||
	TokNot // !
)

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal", TokStrLit: "string literal",
	TokFunc: "'func'", TokVar: "'var'", TokIf: "'if'", TokElse: "'else'",
	TokWhile: "'while'", TokFor: "'for'", TokReturn: "'return'",
	TokTrue: "'true'", TokFalse: "'false'", TokBreak: "'break'", TokContinue: "'continue'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','", TokSemi: "';'",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokEq: "'=='", TokNe: "'!='",
	TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
	TokAnd: "'&&'", TokOr: "'||'", TokNot: "'!'",
}

// String names the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Pos is a source location.
type Pos struct {
	Line int
	Col  int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source text and position.
type Token struct {
	Kind  TokKind
	Text  string
	Int   int64   // for TokIntLit
	Float float64 // for TokFloatLit
	Str   string  // for TokStrLit (unescaped)
	Pos   Pos
}

var keywords = map[string]TokKind{
	"func": TokFunc, "var": TokVar, "if": TokIf, "else": TokElse,
	"while": TokWhile, "for": TokFor, "return": TokReturn,
	"true": TokTrue, "false": TokFalse,
	"break": TokBreak, "continue": TokContinue,
}

// Error is a positioned compile error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("jaguar: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
