package jaguar

import "fmt"

// builtinSig describes one built-in function signature. Overloads (len)
// are resolved on the first argument's type.
type builtinSig struct {
	args []Type
	ret  Type
}

// builtins maps a language-level name to its signature. The cb_* and
// log/time built-ins lower to VM native calls guarded by the security
// manager; the rest lower to dedicated opcodes.
var builtins = map[string]builtinSig{
	"bnew":     {args: []Type{TypeInt}, ret: TypeBytes},
	"int":      {args: []Type{TypeFloat}, ret: TypeInt},
	"float":    {args: []Type{TypeInt}, ret: TypeFloat},
	"cb_size":  {args: []Type{TypeInt}, ret: TypeInt},
	"cb_get":   {args: []Type{TypeInt, TypeInt}, ret: TypeInt},
	"cb_read":  {args: []Type{TypeInt, TypeInt, TypeInt}, ret: TypeBytes},
	"cb_touch": {args: []Type{TypeInt}, ret: TypeInt},
	"log":      {args: []Type{TypeStr}, ret: TypeInt},
	"time":     {args: nil, ret: TypeInt},
	// "len" is overloaded (bytes|str) and handled specially.
}

// funcSig is a user function's signature.
type funcSig struct {
	idx    int
	params []Type
	ret    Type
}

// checker performs name resolution and type checking, annotating the
// AST in place (expression types, local slots, call targets).
type checker struct {
	funcs map[string]funcSig

	// Per-function state.
	locals    []Type // slot -> type (grows; includes params)
	scopes    []map[string]int
	ret       Type
	loopDepth int
}

// Check resolves and type-checks a parsed file. On success every
// expression node carries its type and every Ident its local slot.
// It returns, per function, the full ordered local-slot type list.
func Check(f *File) (map[string][]Type, error) {
	c := &checker{funcs: make(map[string]funcSig)}
	for i, fn := range f.Funcs {
		if _, dup := c.funcs[fn.Name]; dup {
			return nil, errf(fn.Pos, "function %q redefined", fn.Name)
		}
		if _, isBuiltin := builtins[fn.Name]; isBuiltin || fn.Name == "len" {
			return nil, errf(fn.Pos, "function %q shadows a built-in", fn.Name)
		}
		params := make([]Type, len(fn.Params))
		for j, p := range fn.Params {
			params[j] = p.Type
		}
		c.funcs[fn.Name] = funcSig{idx: i, params: params, ret: fn.Return}
	}
	localTypes := make(map[string][]Type, len(f.Funcs))
	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
		localTypes[fn.Name] = c.locals
	}
	return localTypes, nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.locals = nil
	c.scopes = []map[string]int{make(map[string]int)}
	c.ret = fn.Return
	c.loopDepth = 0
	for _, p := range fn.Params {
		if _, err := c.declare(p.Name, p.Type, p.Pos); err != nil {
			return err
		}
	}
	// The body's top level shares the parameter scope, so a body-level
	// declaration cannot shadow a parameter (nested blocks may shadow).
	for _, s := range fn.Body.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	if !blockReturns(fn.Body) {
		return errf(fn.Pos, "function %q: missing return on some path", fn.Name)
	}
	return nil
}

// blockReturns reports whether every path through the block ends in a
// return (conservative).
func blockReturns(b *Block) bool {
	for _, s := range b.Stmts {
		if stmtReturns(s) {
			return true
		}
	}
	return false
}

func stmtReturns(s Stmt) bool {
	switch n := s.(type) {
	case *Return:
		return true
	case *Block:
		return blockReturns(n)
	case *If:
		return n.Else != nil && blockReturns(n.Then) && blockReturns(n.Else)
	default:
		return false
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]int)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t Type, pos Pos) (int, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, errf(pos, "variable %q redeclared in this scope", name)
	}
	slot := len(c.locals)
	c.locals = append(c.locals, t)
	top[name] = slot
	return slot, nil
}

func (c *checker) resolve(name string) (slot int, t Type, ok bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, found := c.scopes[i][name]; found {
			return s, c.locals[s], true
		}
	}
	return 0, TypeInvalid, false
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch n := s.(type) {
	case *Block:
		return c.checkBlock(n)
	case *VarDecl:
		if err := c.checkExpr(n.Init); err != nil {
			return err
		}
		if n.Init.TypeOf() != n.Type {
			return errf(n.Pos, "cannot initialize %s variable %q with %s value",
				n.Type, n.Name, n.Init.TypeOf())
		}
		slot, err := c.declare(n.Name, n.Type, n.Pos)
		if err != nil {
			return err
		}
		n.Slot = slot
		return nil
	case *Assign:
		return c.checkAssign(n)
	case *If:
		if err := c.checkExpr(n.Cond); err != nil {
			return err
		}
		if n.Cond.TypeOf() != TypeBool {
			return errf(n.Pos, "if condition must be bool, found %s", n.Cond.TypeOf())
		}
		if err := c.checkBlock(n.Then); err != nil {
			return err
		}
		if n.Else != nil {
			return c.checkBlock(n.Else)
		}
		return nil
	case *While:
		if err := c.checkExpr(n.Cond); err != nil {
			return err
		}
		if n.Cond.TypeOf() != TypeBool {
			return errf(n.Pos, "while condition must be bool, found %s", n.Cond.TypeOf())
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(n.Body)
	case *For:
		c.pushScope() // the init variable scopes over the whole loop
		defer c.popScope()
		if n.Init != nil {
			if err := c.checkStmt(n.Init); err != nil {
				return err
			}
		}
		if n.Cond != nil {
			if err := c.checkExpr(n.Cond); err != nil {
				return err
			}
			if n.Cond.TypeOf() != TypeBool {
				return errf(n.Pos, "for condition must be bool, found %s", n.Cond.TypeOf())
			}
		}
		if n.Post != nil {
			if err := c.checkStmt(n.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkBlock(n.Body)
	case *Return:
		if err := c.checkExpr(n.Value); err != nil {
			return err
		}
		if n.Value.TypeOf() != c.ret {
			return errf(n.Pos, "return type mismatch: function returns %s, value is %s",
				c.ret, n.Value.TypeOf())
		}
		return nil
	case *Break:
		if c.loopDepth == 0 {
			return errf(n.Pos, "break outside loop")
		}
		return nil
	case *Continue:
		if c.loopDepth == 0 {
			return errf(n.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		if _, isCall := n.X.(*Call); !isCall {
			return errf(n.Pos, "expression statement must be a call")
		}
		return c.checkExpr(n.X)
	default:
		return fmt.Errorf("jaguar: unhandled statement %T", s)
	}
}

func (c *checker) checkAssign(n *Assign) error {
	slot, t, ok := c.resolve(n.Name)
	if !ok {
		return errf(n.Pos, "undefined variable %q", n.Name)
	}
	if err := c.checkExpr(n.Value); err != nil {
		return err
	}
	if n.Index != nil {
		if t != TypeBytes {
			return errf(n.Pos, "cannot index %s variable %q", t, n.Name)
		}
		if err := c.checkExpr(n.Index); err != nil {
			return err
		}
		if n.Index.TypeOf() != TypeInt {
			return errf(n.Pos, "array index must be int, found %s", n.Index.TypeOf())
		}
		if n.Value.TypeOf() != TypeInt {
			return errf(n.Pos, "byte element assignment needs an int value, found %s", n.Value.TypeOf())
		}
		n.Slot = slot
		return nil
	}
	if n.Value.TypeOf() != t {
		return errf(n.Pos, "cannot assign %s value to %s variable %q", n.Value.TypeOf(), t, n.Name)
	}
	n.Slot = slot
	return nil
}

func (c *checker) checkExpr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		n.setType(TypeInt)
	case *FloatLit:
		n.setType(TypeFloat)
	case *BoolLit:
		n.setType(TypeBool)
	case *StrLit:
		n.setType(TypeStr)
	case *Ident:
		slot, t, ok := c.resolve(n.Name)
		if !ok {
			return errf(n.Position(), "undefined variable %q", n.Name)
		}
		n.Slot = slot
		n.setType(t)
	case *Unary:
		if err := c.checkExpr(n.X); err != nil {
			return err
		}
		switch n.Op {
		case TokMinus:
			if t := n.X.TypeOf(); t != TypeInt && t != TypeFloat {
				return errf(n.Position(), "unary minus needs int or float, found %s", t)
			}
			n.setType(n.X.TypeOf())
		case TokNot:
			if n.X.TypeOf() != TypeBool {
				return errf(n.Position(), "'!' needs bool, found %s", n.X.TypeOf())
			}
			n.setType(TypeBool)
		default:
			return errf(n.Position(), "invalid unary operator")
		}
	case *Binary:
		return c.checkBinary(n)
	case *Index:
		if err := c.checkExpr(n.Arr); err != nil {
			return err
		}
		if err := c.checkExpr(n.Idx); err != nil {
			return err
		}
		if n.Arr.TypeOf() != TypeBytes {
			return errf(n.Position(), "cannot index %s value", n.Arr.TypeOf())
		}
		if n.Idx.TypeOf() != TypeInt {
			return errf(n.Position(), "array index must be int, found %s", n.Idx.TypeOf())
		}
		n.setType(TypeInt)
	case *Call:
		return c.checkCall(n)
	default:
		return fmt.Errorf("jaguar: unhandled expression %T", e)
	}
	return nil
}

func (c *checker) checkBinary(n *Binary) error {
	if err := c.checkExpr(n.L); err != nil {
		return err
	}
	if err := c.checkExpr(n.R); err != nil {
		return err
	}
	lt, rt := n.L.TypeOf(), n.R.TypeOf()
	if lt != rt {
		return errf(n.Position(), "operands of %s have mismatched types %s and %s (no implicit conversions; use int()/float())",
			n.Op, lt, rt)
	}
	switch n.Op {
	case TokPlus:
		switch lt {
		case TypeInt, TypeFloat, TypeStr:
			n.setType(lt)
		default:
			return errf(n.Position(), "'+' not defined on %s", lt)
		}
	case TokMinus, TokStar, TokSlash:
		if lt != TypeInt && lt != TypeFloat {
			return errf(n.Position(), "%s not defined on %s", n.Op, lt)
		}
		n.setType(lt)
	case TokPercent:
		if lt != TypeInt {
			return errf(n.Position(), "'%%' not defined on %s", lt)
		}
		n.setType(TypeInt)
	case TokLt, TokLe, TokGt, TokGe:
		if lt != TypeInt && lt != TypeFloat {
			return errf(n.Position(), "ordering %s not defined on %s", n.Op, lt)
		}
		n.setType(TypeBool)
	case TokEq, TokNe:
		switch lt {
		case TypeInt, TypeFloat, TypeBool, TypeStr, TypeBytes:
			n.setType(TypeBool)
		default:
			return errf(n.Position(), "equality not defined on %s", lt)
		}
	case TokAnd, TokOr:
		if lt != TypeBool {
			return errf(n.Position(), "%s needs bool operands, found %s", n.Op, lt)
		}
		n.setType(TypeBool)
	default:
		return errf(n.Position(), "invalid binary operator")
	}
	return nil
}

func (c *checker) checkCall(n *Call) error {
	for _, a := range n.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	// len is overloaded on bytes|str.
	if n.Name == "len" {
		if len(n.Args) != 1 {
			return errf(n.Position(), "len takes exactly one argument")
		}
		switch n.Args[0].TypeOf() {
		case TypeBytes, TypeStr:
			n.Builtin = "len"
			n.setType(TypeInt)
			return nil
		default:
			return errf(n.Position(), "len not defined on %s", n.Args[0].TypeOf())
		}
	}
	if sig, ok := builtins[n.Name]; ok {
		if len(n.Args) != len(sig.args) {
			return errf(n.Position(), "%s takes %d argument(s), got %d", n.Name, len(sig.args), len(n.Args))
		}
		for i, a := range n.Args {
			if a.TypeOf() != sig.args[i] {
				return errf(n.Position(), "%s argument %d must be %s, found %s",
					n.Name, i+1, sig.args[i], a.TypeOf())
			}
		}
		n.Builtin = n.Name
		n.setType(sig.ret)
		return nil
	}
	sig, ok := c.funcs[n.Name]
	if !ok {
		return errf(n.Position(), "undefined function %q", n.Name)
	}
	if len(n.Args) != len(sig.params) {
		return errf(n.Position(), "%s takes %d argument(s), got %d", n.Name, len(sig.params), len(n.Args))
	}
	for i, a := range n.Args {
		if a.TypeOf() != sig.params[i] {
			return errf(n.Position(), "%s argument %d must be %s, found %s",
				n.Name, i+1, sig.params[i], a.TypeOf())
		}
	}
	n.FuncIdx = sig.idx
	n.setType(sig.ret)
	return nil
}
