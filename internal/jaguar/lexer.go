package jaguar

import (
	"strconv"
	"strings"
)

// lexer scans Jaguar source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole source (ending with a TokEOF token).
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isAlpha(c):
		start := lx.off
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		isFloat := false
		if lx.peek() == '.' && isDigit(lx.peek2()) {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.off
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.off < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.off = save
			}
		}
		text := lx.src[start:lx.off]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Token{}, errf(pos, "bad float literal %q", text)
			}
			return Token{Kind: TokFloatLit, Text: text, Float: f, Pos: pos}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errf(pos, "integer literal %q out of range", text)
		}
		return Token{Kind: TokIntLit, Text: text, Int: n, Pos: pos}, nil
	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return Token{}, errf(pos, "newline in string literal")
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, errf(pos, "unterminated escape")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case '0':
					b.WriteByte(0)
				default:
					return Token{}, errf(pos, "unknown escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokStrLit, Text: b.String(), Str: b.String(), Pos: pos}, nil
	}
	// Operators.
	two := func(kind TokKind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		lx.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBracket)
	case ']':
		return one(TokRBracket)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemi)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '=':
		if lx.peek2() == '=' {
			return two(TokEq)
		}
		return one(TokAssign)
	case '!':
		if lx.peek2() == '=' {
			return two(TokNe)
		}
		return one(TokNot)
	case '<':
		if lx.peek2() == '=' {
			return two(TokLe)
		}
		return one(TokLt)
	case '>':
		if lx.peek2() == '=' {
			return two(TokGe)
		}
		return one(TokGt)
	case '&':
		if lx.peek2() == '&' {
			return two(TokAnd)
		}
	case '|':
		if lx.peek2() == '|' {
			return two(TokOr)
		}
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}
