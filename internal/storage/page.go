package storage

import (
	"encoding/binary"
	"fmt"
)

// Slotted page layout
//
//	offset 0: next PageID  (4 bytes) — heap file chain
//	offset 4: numSlots     (2 bytes)
//	offset 6: freeEnd      (2 bytes) — records grow down from here
//	offset 8: slot array, 4 bytes per slot: offset(2) length(2)
//	...free space...
//	records packed at the end of the page
//
// A slot with offset == tombstoneOffset is deleted. A slot with length
// == largeLength holds a largeStubSize-byte stub pointing at an
// overflow-page chain (see heapfile.go).

const (
	pageHeaderSize  = 8
	slotSize        = 4
	tombstoneOffset = 0xFFFF
	largeLength     = 0xFFFF
	largeStubSize   = 8 // firstOverflowPage(4) + totalLen(4)
)

// MaxInlineRecord is the largest record storable without overflow pages.
const MaxInlineRecord = PageSize - pageHeaderSize - slotSize

// Page wraps a PageSize byte buffer with slotted-record accessors.
// It does not own the buffer; the buffer pool does.
type Page struct {
	buf []byte
}

// AsPage interprets buf as a slotted page. buf must be PageSize long.
func AsPage(buf []byte) *Page {
	if len(buf) != PageSize {
		panic(fmt.Sprintf("storage: AsPage on %d-byte buffer", len(buf)))
	}
	return &Page{buf: buf}
}

// Init formats the buffer as an empty slotted page.
func (p *Page) Init() {
	binary.LittleEndian.PutUint32(p.buf[0:], uint32(InvalidPageID))
	binary.LittleEndian.PutUint16(p.buf[4:], 0)
	binary.LittleEndian.PutUint16(p.buf[6:], PageSize)
}

// Next returns the next page in the heap-file chain. A zero link reads
// as end-of-chain: page 0 is the meta page and can never be a chain
// successor, and an all-zero page is the legitimate on-disk state of a
// page that was allocated but never written before a crash (recovery
// heals torn extensions to zeroed frames).
func (p *Page) Next() PageID {
	next := PageID(binary.LittleEndian.Uint32(p.buf[0:]))
	if next == 0 {
		return InvalidPageID
	}
	return next
}

// SetNext links the page to the next page in the chain.
func (p *Page) SetNext(id PageID) {
	binary.LittleEndian.PutUint32(p.buf[0:], uint32(id))
}

// NumSlots returns the number of slots ever allocated on the page
// (including tombstones).
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[4:]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.buf[4:], uint16(n))
}

func (p *Page) freeEnd() int {
	return int(binary.LittleEndian.Uint16(p.buf[6:]))
}

func (p *Page) setFreeEnd(n int) {
	binary.LittleEndian.PutUint16(p.buf[6:], uint16(n))
}

func (p *Page) slot(i int) (offset, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p *Page) setSlot(i, offset, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(offset))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// FreeSpace returns the bytes available for a new record plus its slot.
func (p *Page) FreeSpace() int {
	slotArrayEnd := pageHeaderSize + p.NumSlots()*slotSize
	free := p.freeEnd() - slotArrayEnd
	if free < 0 {
		return 0
	}
	return free
}

// CanFit reports whether a record of n bytes fits on the page.
func (p *Page) CanFit(n int) bool {
	return p.FreeSpace() >= n+slotSize
}

// Insert stores rec on the page and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) >= largeLength {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds the inline limit", len(rec))
	}
	if !p.CanFit(len(rec)) {
		return 0, fmt.Errorf("storage: page full (%d bytes free, need %d)", p.FreeSpace(), len(rec)+slotSize)
	}
	slotNum := p.NumSlots()
	end := p.freeEnd()
	start := end - len(rec)
	copy(p.buf[start:end], rec)
	p.setSlot(slotNum, start, len(rec))
	p.setNumSlots(slotNum + 1)
	p.setFreeEnd(start)
	return slotNum, nil
}

// insertLargeStub stores an overflow stub for a large record and marks
// the slot with the large-record length sentinel.
func (p *Page) insertLargeStub(first PageID, totalLen uint32) (int, error) {
	if !p.CanFit(largeStubSize) {
		return 0, fmt.Errorf("storage: page full for large-record stub")
	}
	slotNum := p.NumSlots()
	end := p.freeEnd()
	start := end - largeStubSize
	binary.LittleEndian.PutUint32(p.buf[start:], uint32(first))
	binary.LittleEndian.PutUint32(p.buf[start+4:], totalLen)
	p.setSlot(slotNum, start, largeLength)
	p.setNumSlots(slotNum + 1)
	p.setFreeEnd(start)
	return slotNum, nil
}

// Record returns the record bytes at slot i (aliasing the page buffer),
// or (nil, false) if the slot is a tombstone. Large records return
// isLarge = true and the stub contents.
func (p *Page) Record(i int) (rec []byte, isLarge bool, first PageID, totalLen uint32, ok bool) {
	if i < 0 || i >= p.NumSlots() {
		return nil, false, InvalidPageID, 0, false
	}
	off, length := p.slot(i)
	if off == tombstoneOffset {
		return nil, false, InvalidPageID, 0, false
	}
	if length == largeLength {
		first = PageID(binary.LittleEndian.Uint32(p.buf[off:]))
		totalLen = binary.LittleEndian.Uint32(p.buf[off+4:])
		return nil, true, first, totalLen, true
	}
	return p.buf[off : off+length], false, InvalidPageID, 0, true
}

// Delete tombstones slot i. It reports whether a live record was
// deleted, and returns overflow-chain information for large records so
// the caller can free the chain. Deleted space is not compacted; the
// paper's workloads are append-only, and compaction is left to a
// rebuild.
func (p *Page) Delete(i int) (wasLarge bool, first PageID, ok bool) {
	if i < 0 || i >= p.NumSlots() {
		return false, InvalidPageID, false
	}
	off, length := p.slot(i)
	if off == tombstoneOffset {
		return false, InvalidPageID, false
	}
	if length == largeLength {
		first = PageID(binary.LittleEndian.Uint32(p.buf[off:]))
		wasLarge = true
	}
	p.setSlot(i, tombstoneOffset, 0)
	return wasLarge, first, true
}
