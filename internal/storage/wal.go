package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"predator/internal/obs"
)

// Write-ahead logging. The WAL is a physical redo log: whole-page
// after-images plus meta-page updates, CRC-framed so a torn tail is
// detected and ignored at replay. The ordering invariant is the
// classic one — a page's log record is durable before the page itself
// is written to the data file — enforced by DiskManager, which flushes
// and fsyncs the WAL ahead of every data-file write. Recovery replays
// the valid record prefix onto the data file at open; checkpoints
// (flush-all + data fsync) archive the log into a segment (when
// archiving is on) and truncate it.
//
// Record framing (little-endian). The record's LSN is its *global*
// byte offset: the offsets of every log generation concatenate into
// one monotone stream, so an archived history addresses every record
// a database ever logged (the base of the current generation is
// recovered from the archive at open).
//
//	type(1) | pageID(4) | payloadLen(4) | payload | crc32c(4)
//
// where the CRC covers everything before it. Record types:
//
//	walPageImage — payload is the full PageSize after-image of pageID
//	walMeta      — payload is numPages(4) | freeHead(4)
//	walCommit    — empty payload; marks a statement-boundary commit.
//	               Redo ignores it; point-in-time recovery replays up
//	               to (exclusive) a chosen post-commit LSN.
const (
	walPageImage byte = 1
	walMeta      byte = 2
	walCommit    byte = 3

	walHeaderSize  = 9 // type + pageID + payloadLen
	walTrailerSize = 4 // crc32c
)

// Process-wide WAL metrics.
var (
	obsWALAppends        = obs.Default.Counter("predator_wal_appends_total")
	obsWALBytes          = obs.Default.Counter("predator_wal_bytes_total")
	obsWALFsyncs         = obs.Default.Counter("predator_wal_fsyncs_total")
	obsWALFsyncSeconds   = obs.Default.Histogram("predator_wal_fsync_seconds")
	obsWALCheckpoints    = obs.Default.Counter("predator_wal_checkpoints_total")
	obsWALRecoveries     = obs.Default.Counter("predator_wal_recoveries_total")
	obsWALRecoveredRecs  = obs.Default.Counter("predator_wal_recovered_records_total")
	obsWALRecoveredBytes = obs.Default.Counter("predator_wal_recovered_bytes_total")
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WALStats reports cumulative write-ahead-log activity for one disk
// manager (process-wide equivalents live in the obs registry).
type WALStats struct {
	Appends uint64
	Bytes   uint64
	Fsyncs  uint64
	// FsyncNanos is the cumulative wall time spent inside fsync calls;
	// the engine's query store diffs it around a statement to attribute
	// commit-latency waits.
	FsyncNanos uint64
}

// wal is the append side of the write-ahead log. It is owned by a
// DiskManager and only ever called with d.mu held, so it needs no lock
// of its own.
type wal struct {
	f      *os.File
	w      *bufio.Writer
	base   int64 // global LSN of the log's first byte (archived history before it)
	size   int64 // logical end offset within this generation (includes buffered records)
	synced int64 // offset known durable on stable storage
	marked int64 // offset as of the last commit-mark append (or reset)
	err    error // sticky: first append/flush/fsync failure poisons the log
	stats  WALStats
}

// openWAL creates (truncating) the log file at path. Any previous log
// contents have already been consumed by recovery (and, when archiving
// is on, preserved as a segment). base is the global LSN the new
// generation starts at.
func openWAL(path string, base int64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal %s: %w", path, err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<16), base: base}, nil
}

// encodeWALRecord frames one record into a fresh buffer.
func encodeWALRecord(typ byte, page PageID, payload []byte) []byte {
	rec := make([]byte, walHeaderSize+len(payload)+walTrailerSize)
	rec[0] = typ
	binary.LittleEndian.PutUint32(rec[1:], uint32(page))
	binary.LittleEndian.PutUint32(rec[5:], uint32(len(payload)))
	copy(rec[walHeaderSize:], payload)
	crc := crc32.Checksum(rec[:walHeaderSize+len(payload)], walCRC)
	binary.LittleEndian.PutUint32(rec[walHeaderSize+len(payload):], crc)
	return rec
}

// append frames and buffers one record. The record is not durable
// until sync; callers enforce WAL-before-data ordering. A failed
// append poisons the log: later appends, commits and checkpoints fail
// fast on the sticky error rather than risking a silent durability
// hole (the fsyncgate rule applies to the whole buffered pipeline).
func (l *wal) append(typ byte, page PageID, payload []byte) error {
	if l.err != nil {
		return l.err
	}
	rec := encodeWALRecord(typ, page, payload)
	fireFault("walwrite", func() {
		// Torn log write: half the record reaches the file, then the
		// process dies. Replay must discard the fragment.
		l.w.Flush()
		l.f.Write(rec[:len(rec)/2])
	})
	if err := fireFaultIO("walwrite", "eio", "enospc"); err != nil {
		l.err = fmt.Errorf("storage: wal append: %w", err)
		return l.err
	}
	if _, err := l.w.Write(rec); err != nil {
		l.err = fmt.Errorf("storage: wal append: %w", err)
		return l.err
	}
	l.size += int64(len(rec))
	l.stats.Appends++
	l.stats.Bytes += uint64(len(rec))
	obsWALAppends.Inc()
	obsWALBytes.Add(int64(len(rec)))
	return nil
}

// appendCommitMark logs a statement-boundary record if anything has
// been appended since the last mark. The post-mark global LSN is the
// exact point-in-time-recovery target for the statement.
func (l *wal) appendCommitMark() error {
	if l.size == l.marked {
		return nil
	}
	if err := l.append(walCommit, 0, nil); err != nil {
		return err
	}
	l.marked = l.size
	return nil
}

// dirty reports whether records are buffered or unfsynced.
func (l *wal) dirty() bool { return l.size > l.synced }

// sync makes every appended record durable (flush + fsync), observing
// the fsync latency histogram. No-op when already durable. A failed
// fsync is sticky: the kernel may have dropped the very pages it
// failed to write (fsyncgate), so no later sync may report success for
// records appended before the failure.
func (l *wal) sync() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty() {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("storage: wal flush: %w", err)
		return l.err
	}
	if err := fireFaultIO("walwrite", "fsyncfail"); err != nil {
		l.err = fmt.Errorf("storage: wal fsync: %w", err)
		return l.err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("storage: wal fsync: %w", err)
		return l.err
	}
	elapsed := time.Since(start)
	obsWALFsyncSeconds.Observe(elapsed)
	obsWALFsyncs.Inc()
	l.stats.Fsyncs++
	l.stats.FsyncNanos += uint64(elapsed)
	l.synced = l.size
	return nil
}

// reset truncates the log after a checkpoint: every logged change is
// on the data file, so this generation's history is no longer needed
// in the live log (the archive keeps it when archiving is on). The
// global stream continues: the next generation's base advances by the
// truncated size.
func (l *wal) reset() error {
	if l.err != nil {
		return l.err
	}
	l.w.Reset(l.f) // discard buffered records; they describe flushed pages
	if err := l.f.Truncate(0); err != nil {
		l.err = fmt.Errorf("storage: wal truncate: %w", err)
		return l.err
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		l.err = fmt.Errorf("storage: wal seek: %w", err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("storage: wal truncate fsync: %w", err)
		return l.err
	}
	l.base += l.size
	l.size = 0
	l.synced = 0
	l.marked = 0
	return nil
}

// close flushes, fsyncs and releases the log file.
func (l *wal) close() error {
	syncErr := l.sync()
	if err := l.f.Close(); err != nil && syncErr == nil {
		return err
	}
	return syncErr
}

// walRecord is one decoded log record handed to scanWAL's callback.
type walRecord struct {
	typ     byte
	page    PageID
	payload []byte
	off     int // byte offset of the record within the scanned buffer
}

// scanWAL walks the valid record prefix of log bytes, invoking fn per
// record. It returns the length of the valid prefix and whether the
// log ended in a torn/corrupt record (expected after a mid-append
// crash). A non-nil error from fn aborts the scan.
func scanWAL(log []byte, fn func(rec walRecord) error) (valid int64, torn bool, err error) {
	off := 0
	for {
		if off+walHeaderSize+walTrailerSize > len(log) {
			return int64(off), off < len(log), nil
		}
		typ := log[off]
		page := PageID(binary.LittleEndian.Uint32(log[off+1:]))
		plen := int(binary.LittleEndian.Uint32(log[off+5:]))
		end := off + walHeaderSize + plen + walTrailerSize
		if plen < 0 || plen > PageSize || end > len(log) {
			return int64(off), true, nil
		}
		want := binary.LittleEndian.Uint32(log[end-walTrailerSize:])
		if crc32.Checksum(log[off:end-walTrailerSize], walCRC) != want {
			return int64(off), true, nil
		}
		payload := log[off+walHeaderSize : off+walHeaderSize+plen]
		switch typ {
		case walPageImage:
			if plen != PageSize {
				return int64(off), true, nil
			}
		case walMeta:
			if plen != 8 {
				return int64(off), true, nil
			}
		case walCommit:
			if plen != 0 {
				return int64(off), true, nil
			}
		default:
			return int64(off), true, nil
		}
		if fn != nil {
			if err := fn(walRecord{typ: typ, page: page, payload: payload, off: off}); err != nil {
				return int64(off), false, err
			}
		}
		off = end
	}
}

// RecoveryInfo describes the redo pass that ran (if any) when the
// database was opened.
type RecoveryInfo struct {
	// Ran is true when a non-empty WAL was found and replayed.
	Ran bool
	// Records is the number of valid records applied.
	Records int
	// Bytes is the length of the valid record prefix.
	Bytes int64
	// TornTail is true when the log ended in a torn/corrupt record
	// (expected after a mid-append crash; the fragment is discarded).
	TornTail bool
}

// replayWAL applies the valid prefix of the log at walPath onto data
// file f: page images are written in order (framed and checksummed)
// and the last meta record, if any, rewrites the meta page. Torn or
// corrupt records end the replay — they can only be the unsynced tail.
//
// When archiveDir is non-empty the valid prefix is preserved as an
// archive segment before the log is truncated, so the point-in-time
// history stays gapless across crashes. base is the end of the
// archived history; the returned nextBase is the global LSN the next
// log generation starts at. Two cases: normally the crashed
// generation began at base and is archived there; but if the crash
// hit a checkpoint's window between archiving and truncation, the
// newest segment already holds exactly these bytes — then the
// generation began at base-valid, nothing new is archived, and the
// stream does not advance again.
func replayWAL(walPath string, f *os.File, archiveDir string, base int64) (RecoveryInfo, int64, error) {
	var info RecoveryInfo
	log, err := os.ReadFile(walPath)
	if err != nil {
		if os.IsNotExist(err) {
			return info, base, nil
		}
		return info, base, fmt.Errorf("storage: read wal %s: %w", walPath, err)
	}
	if len(log) == 0 {
		return info, base, nil
	}
	info.Ran = true

	// Establish this generation's true start before stamping frames.
	valid, torn, _ := scanWAL(log, nil)
	genBase, nextBase := base, base+valid
	alreadyArchived := false
	if archiveDir != "" && valid > 0 && lastSegmentMatches(archiveDir, log[:valid]) {
		alreadyArchived = true
		genBase, nextBase = base-valid, base
	}

	var metaSeen bool
	var numPages, freeHead uint32
	_, _, err = scanWAL(log, func(rec walRecord) error {
		switch rec.typ {
		case walPageImage:
			if err := writeFrameTo(f, rec.page, rec.payload, uint64(genBase)+uint64(rec.off)); err != nil {
				return fmt.Errorf("storage: recovery: redo page %d: %w", rec.page, err)
			}
		case walMeta:
			metaSeen = true
			numPages = binary.LittleEndian.Uint32(rec.payload[0:])
			freeHead = binary.LittleEndian.Uint32(rec.payload[4:])
		}
		info.Records++
		return nil
	})
	if err != nil {
		return info, base, err
	}
	info.TornTail = torn
	info.Bytes = valid
	if metaSeen {
		if err := writeFrameTo(f, 0, encodeMetaPayload(numPages, freeHead), uint64(genBase)+uint64(valid)); err != nil {
			return info, base, fmt.Errorf("storage: recovery: redo meta page: %w", err)
		}
	}
	if err := healFramesAfterReplay(f); err != nil {
		return info, base, err
	}
	if err := f.Sync(); err != nil {
		return info, base, fmt.Errorf("storage: recovery: data fsync: %w", err)
	}
	if archiveDir != "" && valid > 0 && !alreadyArchived {
		// Preserve the replayed prefix in the archive before discarding
		// it, so restores spanning this crash see a contiguous history.
		if _, err := writeSegment(archiveDir, log[:valid], genBase); err != nil {
			return info, base, fmt.Errorf("storage: recovery: archive replayed log: %w", err)
		}
	}
	// The log is fully applied; truncate so it is not replayed twice.
	if err := os.Truncate(walPath, 0); err != nil {
		return info, base, fmt.Errorf("storage: recovery: truncate wal: %w", err)
	}
	obsWALRecoveries.Inc()
	obsWALRecoveredRecs.Add(int64(info.Records))
	obsWALRecoveredBytes.Add(info.Bytes)
	return info, nextBase, nil
}

// healFramesAfterReplay stamps valid empty frames over pages that the
// meta page accounts for but that were never durably written — a crash
// between the file extension and its first page write leaves either a
// short file or an all-zero hole. Genuinely torn pages (non-zero, bad
// CRC) are left alone so reads surface ErrChecksum.
func healFramesAfterReplay(f *os.File) error {
	var meta [DiskFrameSize]byte
	if n, err := f.ReadAt(meta[:], 0); n < DiskFrameSize || !verifyFrame(meta[:]) {
		// No readable meta page: nothing to heal against (the open path
		// will report the real error).
		_ = err
		return nil
	}
	numPages := binary.LittleEndian.Uint32(meta[frameHeaderSize+8:])
	var frame [DiskFrameSize]byte
	zero := make([]byte, PageSize)
	for id := PageID(1); uint32(id) < numPages; id++ {
		n, err := f.ReadAt(frame[:], int64(id)*DiskFrameSize)
		if err != nil && err != io.EOF {
			return fmt.Errorf("storage: recovery: heal read page %d: %w", id, err)
		}
		if n == DiskFrameSize && verifyFrame(frame[:]) {
			continue
		}
		short := n < DiskFrameSize
		allZero := true
		for _, b := range frame[:n] {
			if b != 0 {
				allZero = false
				break
			}
		}
		if short || allZero {
			if err := writeFrameTo(f, id, zero, 0); err != nil {
				return fmt.Errorf("storage: recovery: heal page %d: %w", id, err)
			}
		}
	}
	return nil
}

// encodeMetaPayload renders the meta page contents (the framing CRC is
// added by the frame writer).
func encodeMetaPayload(numPages, freeHead uint32) []byte {
	payload := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(payload[0:], metaMagic)
	binary.LittleEndian.PutUint32(payload[4:], metaVersion)
	binary.LittleEndian.PutUint32(payload[8:], numPages)
	binary.LittleEndian.PutUint32(payload[12:], freeHead)
	return payload
}
