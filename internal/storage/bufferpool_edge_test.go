package storage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestBufferPoolStaleFrameInvalidatedOnReuse is the free/allocate
// cache-coherence regression test: after a page is freed and its ID
// reused, the pool must not serve the old cached image.
func TestBufferPoolStaleFrameInvalidatedOnReuse(t *testing.T) {
	d := newDisk(t)
	defer d.Close()
	pool := NewBufferPool(d, 8)

	pp, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id := pp.ID()
	copy(pp.Data(), bytes.Repeat([]byte{0xEE}, PageSize))
	pp.Unpin(true)

	// Free as the heap layer does: drop from the pool, then free on disk.
	pool.Drop(id)
	if err := d.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}

	// The freed ID is reused; the new page must be freshly initialized,
	// not the 0xEE image.
	pp2, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate (reuse): %v", err)
	}
	defer pp2.Unpin(false)
	if pp2.ID() != id {
		t.Fatalf("free list did not reuse page %d (got %d)", id, pp2.ID())
	}
	if pp2.Data()[100] == 0xEE {
		t.Fatalf("reused page served the stale cached image")
	}
}

// TestBufferPoolDropWhilePinnedDetaches covers the same hazard when a
// pin is still outstanding at Drop time: the frame is detached so the
// next Fetch/Allocate of the ID gets fresh contents, and the stale pin
// discards silently at Unpin.
func TestBufferPoolDropWhilePinnedDetaches(t *testing.T) {
	d := newDisk(t)
	defer d.Close()
	pool := NewBufferPool(d, 8)

	pp, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id := pp.ID()
	copy(pp.Data(), bytes.Repeat([]byte{0xDD}, PageSize))

	pool.Drop(id) // freed while still pinned elsewhere
	if err := d.Free(id); err != nil {
		t.Fatalf("Free: %v", err)
	}

	pp2, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate (reuse): %v", err)
	}
	if pp2.ID() != id {
		t.Fatalf("expected reuse of page %d, got %d", id, pp2.ID())
	}
	if pp2.Data()[0] == 0xDD {
		t.Fatalf("reused page sees the dropped frame's contents")
	}
	pp2.Unpin(true)

	// The stale pin must unpin without resurrecting the old frame or
	// panicking, and must not displace the new frame.
	pp.Unpin(true)
	pp3, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	defer pp3.Unpin(false)
	if pp3.Data()[0] == 0xDD {
		t.Fatalf("stale frame resurfaced after old pin released")
	}
}

// TestBufferPoolEvictionWriteFailure: a dirty victim that cannot be
// written back must fail the fetch and leave the pool consistent.
func TestBufferPoolEvictionWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evictfail.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	pool := NewBufferPool(d, 1)

	pp, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id1 := pp.ID()
	pp.Unpin(true) // dirty, unpinned: the next miss must evict it
	id2, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate id2: %v", err)
	}

	// Make the write-back fail: close the disk manager underneath.
	d.Close()
	if _, err := pool.Fetch(id2); err == nil {
		t.Fatalf("Fetch succeeded though eviction write-back must fail")
	}
	// The dirty victim must still be resident (not silently discarded).
	bp := pool
	bp.mu.Lock()
	_, resident := bp.frames[id1]
	bp.mu.Unlock()
	if !resident {
		t.Fatalf("dirty page %d discarded after failed eviction", id1)
	}
}

// TestBufferPoolExhaustedError: every frame pinned -> a further fetch
// reports pool exhaustion rather than deadlocking or evicting a pin.
func TestBufferPoolExhaustedError(t *testing.T) {
	d := newDisk(t)
	defer d.Close()
	pool := NewBufferPool(d, 2)

	var pins []*PinnedPage
	for i := 0; i < 2; i++ {
		pp, err := pool.Allocate()
		if err != nil {
			t.Fatalf("Allocate %d: %v", i, err)
		}
		pins = append(pins, pp)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("disk Allocate: %v", err)
	}
	_, err = pool.Fetch(id)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("Fetch on full pool: got %v, want exhaustion error", err)
	}
	// Releasing one pin must make the fetch succeed.
	pins[0].Unpin(false)
	pp, err := pool.Fetch(id)
	if err != nil {
		t.Fatalf("Fetch after unpin: %v", err)
	}
	pp.Unpin(false)
	pins[1].Unpin(false)
}

// TestBufferPoolFetchErrorLeavesNoOrphan: a failed read must not leave
// a half-initialized frame in the pool (a later fetch would serve it).
func TestBufferPoolFetchErrorLeavesNoOrphan(t *testing.T) {
	d := newDisk(t)
	defer d.Close()
	pool := NewBufferPool(d, 4)

	// Reads of out-of-range pages fail inside DiskManager.Read.
	if _, err := pool.Fetch(PageID(99)); err == nil {
		t.Fatalf("Fetch of invalid page succeeded")
	}
	pool.mu.Lock()
	_, orphan := pool.frames[PageID(99)]
	lruLen := pool.lru.Len()
	pool.mu.Unlock()
	if orphan {
		t.Fatalf("failed Fetch left an orphaned frame")
	}
	if lruLen != 0 {
		t.Fatalf("failed Fetch left %d LRU entries", lruLen)
	}
}

// TestBufferPoolLogsDirtyImagesAtUnpin: under a durable disk manager,
// releasing the last pin of a dirty page must append its after-image
// to the WAL, so a statement-boundary Commit makes it recoverable even
// though the page is only in memory.
func TestBufferPoolLogsDirtyImagesAtUnpin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unpinlog.db")
	d := openDurable(t, path)
	pool := NewBufferPool(d, 8)

	pp, err := pool.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id := pp.ID()
	want := bytes.Repeat([]byte{0x42}, PageSize)
	copy(pp.Data(), want)
	appendsBefore := d.WALStats().Appends
	pp.Unpin(true)
	if got := d.WALStats().Appends; got != appendsBefore+1 {
		t.Fatalf("unpin(dirty) appended %d records, want 1", got-appendsBefore)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Crash without ever flushing the pool; the image must come back.
	crashDisk(d)
	d2 := openDurable(t, path)
	defer d2.Close()
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("dirty page lost despite unpin-time logging")
	}
}
