package storage

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Deterministic fault injection for the storage layer, used by the
// crash-recovery and disk-fault harnesses (internal/crashtest) to prove
// that redo recovery and the disk-fault taxonomy work rather than
// assert them. It follows the PREDATOR_FAULT convention established for
// executor supervision (internal/isolate): a spec names a protocol
// point and a failure mode,
//
//	point:mode[:n]
//
// Points (all inside DiskManager/WAL, fired with d.mu held):
//
//	walwrite   — appending a record to the write-ahead log (error
//	             modes), or the WAL fsync (fsyncfail mode)
//	pagewrite  — writing a page frame to the data file
//	metawrite  — writing the meta page frame
//	checkpoint — after the data-file sync, before WAL truncation
//	             (fsyncfail targets the data-file sync itself)
//	archive    — copying the WAL into an archive segment
//
// Process-fatal modes (the original crash matrix):
//
//	crash — exit the process immediately (like SIGKILL: nothing flushed)
//	torn  — perform the first half of the write, then exit (torn page /
//	        torn log record)
//	hang  — block forever; the supervising parent must SIGKILL us
//
// Disk-fault modes (the I/O error matrix). These do not kill the
// process: the operation at the point returns a synthetic error, which
// must surface through the storage fault taxonomy (sticky WAL errors,
// degraded read-only mode, typed wire faults):
//
//	eio       — the write fails with EIO (media error)
//	enospc    — the write fails with ENOSPC (disk full)
//	fsyncfail — the fsync at the point fails with EIO (fsyncgate: the
//	            kernel may already have dropped the dirty data, so the
//	            failure must be sticky and fatal for buffered records)
//
// The optional :n makes a process-fatal fault fire on the n-th hit of
// the point (default 1), which is how the harness varies crash timing
// per seed. Disk-fault modes instead fire on every hit from the n-th
// onward, until disarmed — a full disk stays full — so in-process tests
// arm and clear them around the workload with ArmFault.
//
// The spec is read from the PREDATOR_FAULT environment variable once
// per process; specs whose point is not a storage point are ignored, so
// the same variable keeps working for executor-protocol faults.
// ArmFault replaces the plan programmatically (tests).
const FaultEnv = "PREDATOR_FAULT"

// faultExitCode distinguishes injected crashes from ordinary failures
// (the same code the executor fault machinery uses).
const faultExitCode = 42

var storagePoints = map[string]bool{
	"walwrite": true, "pagewrite": true, "metawrite": true,
	"checkpoint": true, "archive": true,
}

// errorModes are the disk-fault modes that inject an error return
// instead of killing the process.
var errorModes = map[string]bool{"eio": true, "enospc": true, "fsyncfail": true}

type diskFault struct {
	point     string
	mode      string
	remaining atomic.Int64
}

var (
	faultEnvOnce sync.Once
	faultMu      sync.Mutex
	faultPlan    atomic.Pointer[diskFault]
)

// parseFaultSpec parses point:mode[:n]; nil when malformed or aimed at
// a non-storage point (a bad spec must never break storage).
func parseFaultSpec(spec string) *diskFault {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 || !storagePoints[parts[0]] {
		return nil
	}
	p := &diskFault{point: parts[0], mode: parts[1]}
	n := int64(1)
	if len(parts) == 3 {
		v, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil || v < 1 {
			return nil
		}
		n = v
	}
	p.remaining.Store(n)
	return p
}

// loadFault returns the active plan, parsing PREDATOR_FAULT on first use.
func loadFault() *diskFault {
	faultEnvOnce.Do(func() {
		if spec := os.Getenv(FaultEnv); spec != "" {
			faultMu.Lock()
			if faultPlan.Load() == nil { // ArmFault may have run first
				faultPlan.Store(parseFaultSpec(spec))
			}
			faultMu.Unlock()
		}
	})
	return faultPlan.Load()
}

// ArmFault installs (or, with an empty spec, clears) a fault plan
// programmatically. In-process disk-fault tests use it to bracket a
// workload with an injected I/O failure; the environment-variable path
// stays authoritative for re-exec'd crash children.
func ArmFault(spec string) {
	loadFault() // settle the env race first
	faultMu.Lock()
	defer faultMu.Unlock()
	if spec == "" {
		faultPlan.Store(nil)
		return
	}
	faultPlan.Store(parseFaultSpec(spec))
}

// fireFault triggers a configured process-fatal fault (crash, torn,
// hang) if it targets point and its countdown has elapsed. torn
// performs the partial write for torn mode (nil = crash without
// partial effects). Error modes are handled by fireFaultIO instead.
func fireFault(point string, torn func()) {
	p := loadFault()
	if p == nil || p.point != point || errorModes[p.mode] {
		return
	}
	if p.remaining.Add(-1) != 0 {
		return
	}
	switch p.mode {
	case "crash":
		fmt.Fprintf(os.Stderr, "storage: injected crash at %s\n", point)
		os.Exit(faultExitCode)
	case "torn":
		if torn != nil {
			torn()
		}
		fmt.Fprintf(os.Stderr, "storage: injected torn write at %s\n", point)
		os.Exit(faultExitCode)
	case "hang":
		// Block forever; the harness SIGKILLs us. A sleep loop rather
		// than select{} so the runtime's deadlock detector does not
		// turn the hang into an orderly exit.
		fmt.Fprintf(os.Stderr, "storage: injected hang at %s\n", point)
		for {
			time.Sleep(time.Hour)
		}
	}
}

// fireFaultIO returns the injected I/O error when the armed fault
// targets point with one of the accepted error modes. Unlike the
// process-fatal modes, an error fault keeps firing once its countdown
// has elapsed (a full disk stays full until space frees): the n-th and
// every later hit fail until the plan is disarmed.
func fireFaultIO(point string, modes ...string) error {
	p := loadFault()
	if p == nil || p.point != point || !errorModes[p.mode] {
		return nil
	}
	ok := false
	for _, m := range modes {
		if m == p.mode {
			ok = true
			break
		}
	}
	if !ok {
		return nil
	}
	if p.remaining.Add(-1) > 0 {
		return nil
	}
	switch p.mode {
	case "enospc":
		return fmt.Errorf("injected disk full at %s: %w", point, syscall.ENOSPC)
	case "fsyncfail":
		return fmt.Errorf("injected fsync failure at %s: %w", point, syscall.EIO)
	default: // eio
		return fmt.Errorf("injected I/O error at %s: %w", point, syscall.EIO)
	}
}
