package storage

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Deterministic crash injection for the storage write path, used by the
// crash-recovery harness (internal/crashtest) to prove that redo
// recovery works rather than assert it. It follows the PREDATOR_FAULT
// convention established for executor supervision (internal/isolate):
// a spec names a protocol point and a failure mode,
//
//	point:mode[:n]
//
// Points (all inside DiskManager/WAL, fired with d.mu held):
//
//	walwrite   — before appending a record to the write-ahead log
//	pagewrite  — before writing a page frame to the data file
//	metawrite  — before writing the meta page frame
//	checkpoint — after the data-file sync, before WAL truncation
//
// Modes:
//
//	crash — exit the process immediately (like SIGKILL: nothing flushed)
//	torn  — perform the first half of the write, then exit (torn page /
//	        torn log record)
//	hang  — block forever; the supervising parent must SIGKILL us
//
// The optional :n makes the fault fire on the n-th hit of the point
// (default 1), which is how the harness varies crash timing per seed.
//
// The spec is read from the PREDATOR_FAULT environment variable once
// per process; specs whose point is not a storage point are ignored, so
// the same variable keeps working for executor-protocol faults.
const FaultEnv = "PREDATOR_FAULT"

// faultExitCode distinguishes injected crashes from ordinary failures
// (the same code the executor fault machinery uses).
const faultExitCode = 42

var storagePoints = map[string]bool{
	"walwrite": true, "pagewrite": true, "metawrite": true, "checkpoint": true,
}

type diskFault struct {
	point     string
	mode      string
	remaining atomic.Int64
}

var (
	faultOnce sync.Once
	faultPlan *diskFault
)

// loadFault parses PREDATOR_FAULT once; nil when unset, malformed, or
// aimed at a non-storage point (a bad spec must never break storage).
func loadFault() *diskFault {
	faultOnce.Do(func() {
		spec := os.Getenv(FaultEnv)
		if spec == "" {
			return
		}
		parts := strings.SplitN(spec, ":", 3)
		if len(parts) < 2 || !storagePoints[parts[0]] {
			return
		}
		p := &diskFault{point: parts[0], mode: parts[1]}
		n := int64(1)
		if len(parts) == 3 {
			v, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || v < 1 {
				return
			}
			n = v
		}
		p.remaining.Store(n)
		faultPlan = p
	})
	return faultPlan
}

// fireFault triggers the configured fault if it targets point and its
// countdown has elapsed. torn performs the partial write for torn mode
// (nil = crash without partial effects).
func fireFault(point string, torn func()) {
	p := loadFault()
	if p == nil || p.point != point {
		return
	}
	if p.remaining.Add(-1) != 0 {
		return
	}
	switch p.mode {
	case "crash":
		fmt.Fprintf(os.Stderr, "storage: injected crash at %s\n", point)
		os.Exit(faultExitCode)
	case "torn":
		if torn != nil {
			torn()
		}
		fmt.Fprintf(os.Stderr, "storage: injected torn write at %s\n", point)
		os.Exit(faultExitCode)
	case "hang":
		// Block forever; the harness SIGKILLs us. A sleep loop rather
		// than select{} so the runtime's deadlock detector does not
		// turn the hang into an orderly exit.
		fmt.Fprintf(os.Stderr, "storage: injected hang at %s\n", point)
		for {
			time.Sleep(time.Hour)
		}
	}
}
