// Package storage implements the storage manager of PREDATOR-Go: a
// file-backed disk manager with write-ahead logging and per-page
// checksums, slotted pages, an LRU buffer pool, and heap files with
// RID-addressed records. It plays the role of the Shore storage
// manager in the paper's PREDATOR stack, including the part the
// in-memory layers used to pretend away: durability and recovery.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"predator/internal/obs"
)

// Process-wide physical-I/O metrics (all disk managers report here).
var (
	obsPageReads     = obs.Default.Counter("predator_storage_page_reads_total")
	obsPageWrites    = obs.Default.Counter("predator_storage_page_writes_total")
	obsPageAllocs    = obs.Default.Counter("predator_storage_page_allocs_total")
	obsChecksumFails = obs.Default.Counter("predator_storage_checksum_failures_total")
	obsReadRepairs   = obs.Default.Counter("predator_storage_read_repairs_total")
	obsWALRebuilds   = obs.Default.Counter("predator_storage_wal_rebuilds_total")
)

// PageSize is the size of every logical page in bytes. This is the
// size upper layers (slotted pages, heap files) see; on disk each page
// is wrapped in a frame that adds a checksum header.
const PageSize = 8192

// Each page is stored as a frame: a 16-byte header followed by the
// PageSize payload. The header carries a CRC32-C over everything after
// the checksum field (reserved bytes, LSN, payload), so torn or
// bit-rotted pages are detected at read time, and the LSN of the WAL
// record that last described the page (diagnostic only — recovery is
// physical redo and does not consult it).
const (
	frameHeaderSize = 16 // crc32c(4) | reserved(4) | lsn(8)
	DiskFrameSize   = frameHeaderSize + PageSize
)

// PageID identifies a page within a database file. Page 0 is the meta
// page and is never handed out.
type PageID uint32

// InvalidPageID is the nil page reference (end of chains, etc.).
const InvalidPageID PageID = 0xFFFFFFFF

const (
	metaMagic = 0x50524544 // "PRED"
	// Version 2 introduced checksummed frames (and with them the WAL);
	// version-1 files have no checksums and are not auto-upgraded.
	metaVersion = 2
)

// ErrClosed is returned by operations on a closed disk manager.
var ErrClosed = errors.New("storage: disk manager is closed")

// ErrShortRead reports a page read that got fewer bytes than a full
// frame — the file ends mid-page, i.e. a torn extension. (The old
// behaviour was to swallow io.EOF and hand back a zeroed page.)
var ErrShortRead = errors.New("storage: short page read (torn or truncated page)")

// ErrChecksum reports a page whose stored CRC does not match its
// contents — a torn write or on-disk corruption.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// Durability selects when the write-ahead log is forced to stable
// storage.
type Durability int

const (
	// DurabilityNone disables the WAL entirely: no log, no checksums
	// on the write path beyond frame stamping, crashes may lose or
	// corrupt recent writes. Matches the pre-WAL engine and is what
	// the paper-figure benchmarks use.
	DurabilityNone Durability = iota
	// DurabilityCommit fsyncs the WAL at statement boundaries (the
	// engine calls Commit after each acknowledged mutation). Default.
	DurabilityCommit
	// DurabilityAlways fsyncs the WAL after every log append.
	DurabilityAlways
)

// ParseDurability maps the user-facing spellings (none|commit|always,
// "" = commit) to a Durability.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "commit":
		return DurabilityCommit, nil
	case "none":
		return DurabilityNone, nil
	case "always":
		return DurabilityAlways, nil
	}
	return DurabilityNone, fmt.Errorf("storage: unknown durability mode %q (want none, commit or always)", s)
}

func (m Durability) String() string {
	switch m {
	case DurabilityCommit:
		return "commit"
	case DurabilityAlways:
		return "always"
	default:
		return "none"
	}
}

// DiskOptions configures OpenDiskOptions.
type DiskOptions struct {
	Durability Durability
	// ArchiveDir, when non-empty, enables WAL archiving: every log
	// generation is preserved as a segment file there before the live
	// log is truncated (at checkpoints and at crash recovery), giving a
	// contiguous record history for point-in-time restore. The global
	// LSN stream resumes from the archive's end at open; without an
	// archive LSNs restart at 0 on each open and are diagnostic only.
	ArchiveDir string
}

// DiskManager allocates, reads and writes fixed-size pages in a single
// database file. Deallocated pages are kept on a persistent free list
// (chained through the first 4 bytes of each free page) and reused by
// subsequent allocations. Every page is checksummed on disk; unless
// durability is off, every write is preceded by a durable WAL record
// and the log is replayed over the data file at open.
type DiskManager struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	numPages uint32 // includes the meta page
	freeHead PageID
	closed   bool

	mode       Durability
	wal        *wal
	walPath    string
	archiveDir string
	recovered  RecoveryInfo

	frame [DiskFrameSize]byte // scratch for frame I/O, guarded by mu

	// Stats counts physical I/O for calibration experiments.
	stats DiskStats
}

// DiskStats reports physical page I/O counts.
type DiskStats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
}

// WALPath returns the log file path for a database file path.
func WALPath(dbPath string) string { return dbPath + ".wal" }

// OpenDisk opens (or creates) the database file at path with the WAL
// disabled (DurabilityNone). Recovery from a leftover log still runs.
func OpenDisk(path string) (*DiskManager, error) {
	return OpenDiskOptions(path, DiskOptions{Durability: DurabilityNone})
}

// OpenDiskOptions opens (or creates) the database file at path. If a
// non-empty write-ahead log is found next to an existing database, its
// valid prefix is replayed onto the data file before the manager is
// handed out — regardless of the requested durability mode, since the
// log describes writes the previous process acknowledged.
func OpenDiskOptions(path string, opts DiskOptions) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	d := &DiskManager{f: f, path: path, mode: opts.Durability, walPath: WALPath(path), archiveDir: opts.ArchiveDir}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	// The global LSN stream resumes from the end of the archived
	// history: the crashed generation (if any) started exactly there,
	// because every truncation archives its generation first.
	var base int64
	if d.archiveDir != "" {
		if base, err = archivedEnd(d.archiveDir); err != nil {
			f.Close()
			return nil, err
		}
	}
	if info.Size() == 0 {
		// Fresh (or fully lost) data file: a leftover log describes a
		// database that no longer exists, so discard rather than replay.
		os.Remove(d.walPath)
	} else {
		d.recovered, base, err = replayWAL(d.walPath, f, d.archiveDir, base)
		if err != nil {
			f.Close()
			return nil, err
		}
		if d.archiveDir == "" {
			base = 0
		}
		if info, err = f.Stat(); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: stat %s: %w", path, err)
		}
	}
	if info.Size() == 0 {
		// Fresh file: write the meta page.
		d.numPages = 1
		d.freeHead = InvalidPageID
		if err := writeFrameTo(f, 0, encodeMetaPayload(1, uint32(InvalidPageID)), 0); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		if info.Size()%DiskFrameSize != 0 {
			f.Close()
			return nil, fmt.Errorf("storage: %s has size %d, not a multiple of the %d-byte page frame", path, info.Size(), DiskFrameSize)
		}
		var meta [DiskFrameSize]byte
		if _, err := f.ReadAt(meta[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: read meta page: %w", err)
		}
		if !verifyFrame(meta[:]) {
			f.Close()
			return nil, fmt.Errorf("storage: meta page of %s: %w", path, ErrChecksum)
		}
		payload := meta[frameHeaderSize:]
		if binary.LittleEndian.Uint32(payload[0:]) != metaMagic {
			f.Close()
			return nil, fmt.Errorf("storage: %s is not a PREDATOR database file", path)
		}
		if v := binary.LittleEndian.Uint32(payload[4:]); v != metaVersion {
			f.Close()
			return nil, fmt.Errorf("storage: unsupported database version %d", v)
		}
		d.numPages = binary.LittleEndian.Uint32(payload[8:])
		d.freeHead = PageID(binary.LittleEndian.Uint32(payload[12:]))
	}
	if d.mode != DurabilityNone {
		d.wal, err = openWAL(d.walPath, base)
		if err != nil {
			f.Close()
			return nil, err
		}
	} else {
		os.Remove(d.walPath)
	}
	return d, nil
}

// Recovered reports whether (and how much) redo recovery ran at open.
func (d *DiskManager) Recovered() RecoveryInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovered
}

// Durability returns the manager's fsync policy.
func (d *DiskManager) Durability() Durability {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mode
}

// stampFrame writes the frame header (LSN + CRC over everything after
// the CRC field) in place. frame must be DiskFrameSize bytes with the
// payload already copied in.
func stampFrame(frame []byte, lsn uint64) {
	binary.LittleEndian.PutUint32(frame[4:], 0) // reserved
	binary.LittleEndian.PutUint64(frame[8:], lsn)
	binary.LittleEndian.PutUint32(frame[0:], crc32.Checksum(frame[4:], walCRC))
}

// verifyFrame checks the stored CRC against the frame contents.
func verifyFrame(frame []byte) bool {
	return binary.LittleEndian.Uint32(frame[0:]) == crc32.Checksum(frame[4:], walCRC)
}

// writeFrameTo stamps payload into a frame and writes it at id's
// offset in f. Shared by the open path, recovery and the write path.
func writeFrameTo(f *os.File, id PageID, payload []byte, lsn uint64) error {
	var frame [DiskFrameSize]byte
	copy(frame[frameHeaderSize:], payload)
	stampFrame(frame[:], lsn)
	if _, err := f.WriteAt(frame[:], int64(id)*DiskFrameSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// readFrameLocked reads and verifies page id into buf (PageSize bytes).
func (d *DiskManager) readFrameLocked(id PageID, buf []byte) error {
	n, err := d.f.ReadAt(d.frame[:], int64(id)*DiskFrameSize)
	if n < DiskFrameSize {
		if err == nil || err == io.EOF {
			return fmt.Errorf("storage: read page %d: got %d of %d bytes: %w", id, n, DiskFrameSize, ErrShortRead)
		}
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	if !verifyFrame(d.frame[:]) {
		obsChecksumFails.Inc()
		return fmt.Errorf("storage: read page %d: %w", id, ErrChecksum)
	}
	copy(buf, d.frame[frameHeaderSize:])
	return nil
}

// syncWALForWriteLocked enforces WAL-before-data: any buffered or
// unfsynced log records become durable before a data-file write.
func (d *DiskManager) syncWALForWriteLocked() error {
	if d.wal == nil || !d.wal.dirty() {
		return nil
	}
	return d.wal.sync()
}

// writeFrameLocked stamps buf into a frame and writes it to the data
// file, after forcing the WAL (the log record describing this state
// must be durable first). faultPoint names the crash-injection point.
func (d *DiskManager) writeFrameLocked(id PageID, buf []byte, faultPoint string) error {
	if err := d.syncWALForWriteLocked(); err != nil {
		return err
	}
	var lsn uint64
	if d.wal != nil {
		lsn = uint64(d.wal.base + d.wal.size)
	}
	copy(d.frame[frameHeaderSize:], buf)
	stampFrame(d.frame[:], lsn)
	frame := d.frame
	fireFault(faultPoint, func() {
		// Torn page: only the first half of the frame reaches the file.
		d.f.WriteAt(frame[:DiskFrameSize/2], int64(id)*DiskFrameSize)
	})
	if err := fireFaultIO(faultPoint, "eio", "enospc"); err != nil {
		// The page image (if logged) is already durable in the WAL, so
		// nothing acknowledged is at risk; the caller surfaces the error.
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if _, err := d.f.WriteAt(d.frame[:], int64(id)*DiskFrameSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// logLocked appends a WAL record, fsyncing immediately under
// DurabilityAlways. No-op when the WAL is off.
func (d *DiskManager) logLocked(typ byte, id PageID, payload []byte) error {
	if d.wal == nil {
		return nil
	}
	if err := d.wal.append(typ, id, payload); err != nil {
		return err
	}
	if d.mode == DurabilityAlways {
		return d.wal.sync()
	}
	return nil
}

// writeMetaLocked logs and writes the meta page.
func (d *DiskManager) writeMetaLocked() error {
	var link [8]byte
	binary.LittleEndian.PutUint32(link[0:], d.numPages)
	binary.LittleEndian.PutUint32(link[4:], uint32(d.freeHead))
	if err := d.logLocked(walMeta, 0, link[:]); err != nil {
		return err
	}
	return d.writeFrameLocked(0, encodeMetaPayload(d.numPages, uint32(d.freeHead)), "metawrite")
}

// Allocate returns a fresh page ID, reusing a freed page if one exists.
// The page contents are undefined; callers must initialize them.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPageID, ErrClosed
	}
	d.stats.Allocs++
	obsPageAllocs.Inc()
	if d.freeHead != InvalidPageID {
		id := d.freeHead
		var page [PageSize]byte
		if err := d.readFrameLocked(id, page[:]); err != nil {
			return InvalidPageID, fmt.Errorf("storage: read free page %d: %w", id, err)
		}
		d.freeHead = PageID(binary.LittleEndian.Uint32(page[:4]))
		if err := d.writeMetaLocked(); err != nil {
			return InvalidPageID, err
		}
		return id, nil
	}
	id := PageID(d.numPages)
	d.numPages++
	// Extend the file with a valid (zeroed, checksummed) frame so reads
	// of the new page succeed and recovery can tell a hole from a tear.
	var zero [PageSize]byte
	if err := d.logLocked(walPageImage, id, zero[:]); err != nil {
		d.numPages--
		return InvalidPageID, err
	}
	if err := d.writeFrameLocked(id, zero[:], "pagewrite"); err != nil {
		d.numPages--
		return InvalidPageID, fmt.Errorf("storage: extend file for page %d: %w", id, err)
	}
	if err := d.writeMetaLocked(); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// Free returns a page to the free list for reuse. Callers holding the
// page in a buffer pool must Drop it first — the pool does this — so a
// later Allocate of the same ID cannot observe the stale cached image.
func (d *DiskManager) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: cannot free page %d", id)
	}
	var page [PageSize]byte
	binary.LittleEndian.PutUint32(page[:4], uint32(d.freeHead))
	if err := d.logLocked(walPageImage, id, page[:]); err != nil {
		return err
	}
	if err := d.writeFrameLocked(id, page[:], "pagewrite"); err != nil {
		return fmt.Errorf("storage: write free link on page %d: %w", id, err)
	}
	d.freeHead = id
	return d.writeMetaLocked()
}

// Read fills buf (which must be PageSize bytes) with the page
// contents, verifying the frame checksum. A read past the end of the
// file returns ErrShortRead; a corrupt frame returns ErrChecksum.
func (d *DiskManager) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: read of invalid page %d (file has %d pages)", id, d.numPages)
	}
	d.stats.Reads++
	obsPageReads.Inc()
	err := d.readFrameLocked(id, buf)
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrShortRead) {
		// A poisoned frame is recoverable if the current log still holds
		// an after-image of the page (the image is durable before the
		// frame is ever written, so a torn or bit-rotted frame whose
		// write we logged can always be reconstructed).
		if rerr := d.repairFromWALLocked(id); rerr == nil {
			obsReadRepairs.Inc()
			return d.readFrameLocked(id, buf)
		}
	}
	return err
}

// repairFromWALLocked rewrites page id's frame from the newest
// after-image in the current log generation. Returns an error when the
// log holds no image of the page.
func (d *DiskManager) repairFromWALLocked(id PageID) error {
	if d.wal == nil {
		return fmt.Errorf("storage: page %d: no WAL to repair from", id)
	}
	// Only flushed bytes are visible in the file; flushing buffered
	// appends is safe (it makes no durability promise).
	if d.wal.err == nil {
		if err := d.wal.w.Flush(); err != nil {
			d.wal.err = fmt.Errorf("storage: wal flush: %w", err)
		}
	}
	log, err := os.ReadFile(d.walPath)
	if err != nil {
		return fmt.Errorf("storage: page %d: read wal for repair: %w", id, err)
	}
	var image []byte
	var imageOff int64 = -1
	scanWAL(log, func(rec walRecord) error {
		if rec.typ == walPageImage && rec.page == id {
			image = append(image[:0], rec.payload...)
			imageOff = int64(rec.off)
		}
		return nil
	})
	if imageOff < 0 {
		return fmt.Errorf("storage: page %d: no image in current wal", id)
	}
	if err := writeFrameTo(d.f, id, image, uint64(d.wal.base+imageOff)); err != nil {
		return err
	}
	return d.f.Sync()
}

// Write stores buf (PageSize bytes) as the page contents. The caller
// (normally the buffer pool) must already have logged the page image
// via LogPageImage when durability is on; Write forces the WAL before
// touching the data file.
func (d *DiskManager) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: write of invalid page %d", id)
	}
	d.stats.Writes++
	obsPageWrites.Inc()
	return d.writeFrameLocked(id, buf, "pagewrite")
}

// LogPageImage appends a full after-image of the page to the WAL. The
// buffer pool calls this when a dirty page's latest contents are about
// to become (or must be able to become) durable. No-op without a WAL.
func (d *DiskManager) LogPageImage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.wal == nil {
		return nil
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: log buffer is %d bytes, want %d", len(buf), PageSize)
	}
	return d.logLocked(walPageImage, id, buf)
}

// Commit makes every logged change durable (WAL flush + fsync), first
// appending a statement-boundary commit mark — the post-mark global
// LSN is an exact point-in-time-recovery target. The engine calls this
// at statement boundaries under DurabilityCommit.
func (d *DiskManager) Commit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.wal == nil {
		return nil
	}
	if err := d.wal.appendCommitMark(); err != nil {
		return err
	}
	return d.wal.sync()
}

// Checkpoint fsyncs the data file, archives the retiring log
// generation (when archiving is on), and truncates the WAL. The caller
// must have flushed every dirty buffered page first (BufferPool.
// FlushAll), otherwise log records still needed for redo are lost. If
// archiving fails the checkpoint aborts before truncation: the live
// log keeps growing (reported as archive lag) rather than tearing a
// gap in the point-in-time history.
func (d *DiskManager) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := fireFaultIO("checkpoint", "eio", "enospc", "fsyncfail"); err != nil {
		return fmt.Errorf("storage: checkpoint data fsync: %w", err)
	}
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("storage: checkpoint data fsync: %w", err)
	}
	if d.wal == nil {
		return nil
	}
	// Close the commit chain and force the log so the archived segment
	// ends on a durable statement boundary.
	if err := d.wal.appendCommitMark(); err != nil {
		return err
	}
	if err := d.wal.sync(); err != nil {
		return err
	}
	if d.archiveDir != "" && d.wal.size > 0 {
		log, err := os.ReadFile(d.walPath)
		if err != nil {
			return fmt.Errorf("storage: checkpoint: read wal for archive: %w", err)
		}
		if int64(len(log)) < d.wal.size {
			return fmt.Errorf("storage: checkpoint: wal file has %d of %d bytes", len(log), d.wal.size)
		}
		if _, err := writeSegment(d.archiveDir, log[:d.wal.size], d.wal.base); err != nil {
			return err
		}
	}
	// Crash window under test: data is durable but the log has not been
	// truncated yet, so recovery re-applies (idempotent) images.
	fireFault("checkpoint", nil)
	if err := d.wal.reset(); err != nil {
		return err
	}
	obsWALCheckpoints.Inc()
	return nil
}

// WALSize returns the current logical size of the write-ahead log in
// bytes (0 when durability is off). The engine uses it to trigger
// automatic checkpoints.
func (d *DiskManager) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return 0
	}
	return d.wal.size
}

// WALStats returns cumulative log activity for this manager.
func (d *DiskManager) WALStats() WALStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return WALStats{}
	}
	return d.wal.stats
}

// IsDiskFull reports whether err is (or wraps) ENOSPC — the condition
// that flips the engine into degraded read-only mode.
func IsDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// Path returns the database file path.
func (d *DiskManager) Path() string { return d.path }

// CopyBaseTo copies the data file into dir as a base backup, without
// blocking writers — the copy is fuzzy (pages may be torn or stale)
// and only becomes consistent once the WAL archive through the
// post-copy checkpoint fence is replayed over it, which is exactly
// what the backup manifest records and Restore enforces.
func (d *DiskManager) CopyBaseTo(dir string) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	path := d.path
	d.mu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: create backup dir: %w", err)
	}
	return copyFile(path, filepath.Join(dir, BaseFileName))
}

// CurrentLSN returns the global LSN of the end of the log: the offset
// the next record will be appended at (0 when durability is off).
func (d *DiskManager) CurrentLSN() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return 0
	}
	return d.wal.base + d.wal.size
}

// WALErr returns the log's sticky error, if any. A non-nil result
// means buffered records may be lost (fsyncgate) and every later
// append or commit fails fast; the engine degrades to read-only and
// recovery goes through RebuildWAL (disk full) or a restart.
func (d *DiskManager) WALErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return nil
	}
	return d.wal.err
}

// ArchiveDir returns the archive directory ("" when archiving is off).
func (d *DiskManager) ArchiveDir() string { return d.archiveDir }

// DiskStatus is a point-in-time snapshot of the storage manager's
// resilience state, surfaced through SHOW STORAGE and /metrics.
type DiskStatus struct {
	CurrentLSN int64  // global end-of-log LSN
	DurableLSN int64  // global LSN known on stable storage
	WALBytes   int64  // live log size (bytes)
	ArchiveLag int64  // bytes not yet rolled into an archive segment
	Archiving  bool   // archiving enabled
	WALStuck   string // sticky log error ("" when healthy)
	Recovered  RecoveryInfo
}

// Status snapshots the resilience state.
func (d *DiskManager) Status() DiskStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DiskStatus{Archiving: d.archiveDir != "", Recovered: d.recovered}
	if d.wal != nil {
		s.CurrentLSN = d.wal.base + d.wal.size
		s.DurableLSN = d.wal.base + d.wal.synced
		s.WALBytes = d.wal.size
		if s.Archiving {
			s.ArchiveLag = d.wal.size
		}
		if d.wal.err != nil {
			s.WALStuck = d.wal.err.Error()
		}
	}
	return s
}

// VerifyPage checks one page frame's checksum without going through
// the read path (no repair, no read counters). The scrubber's probe.
func (d *DiskManager) VerifyPage(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if uint32(id) >= d.numPages {
		return fmt.Errorf("storage: verify of invalid page %d", id)
	}
	n, err := d.f.ReadAt(d.frame[:], int64(id)*DiskFrameSize)
	if n < DiskFrameSize {
		if err != nil && err != io.EOF {
			return fmt.Errorf("storage: verify page %d: %w", id, err)
		}
		return fmt.Errorf("storage: verify page %d: %w", id, ErrShortRead)
	}
	if !verifyFrame(d.frame[:]) {
		return fmt.Errorf("storage: verify page %d: %w", id, ErrChecksum)
	}
	return nil
}

// RepairPageFromWAL rewrites a corrupt page frame from the newest
// after-image in the current log generation, returning an error when
// the log holds none.
func (d *DiskManager) RepairPageFromWAL(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.repairFromWALLocked(id)
}

// RepairPageFrame overwrites page id's on-disk frame with payload
// (PageSize bytes) stamped at lsn, bypassing the WAL — but only if the
// resident frame still fails verification (a writer may have healed
// the page since the caller probed it; an older archived image must
// never clobber a fresh frame). Only for repair tooling (the scrubber)
// restoring an image that is already durable in the archive or a base
// backup — never for new data, which must go through the logged write
// path. Reports whether the frame was written.
func (d *DiskManager) RepairPageFrame(id PageID, payload []byte, lsn uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if len(payload) != PageSize {
		return false, fmt.Errorf("storage: repair buffer is %d bytes, want %d", len(payload), PageSize)
	}
	if uint32(id) >= d.numPages {
		return false, fmt.Errorf("storage: repair of invalid page %d", id)
	}
	if n, _ := d.f.ReadAt(d.frame[:], int64(id)*DiskFrameSize); n == DiskFrameSize && verifyFrame(d.frame[:]) {
		return false, nil
	}
	if err := writeFrameTo(d.f, id, payload, lsn); err != nil {
		return false, err
	}
	return true, d.f.Sync()
}

// RebuildWAL replaces a stuck log with a fresh generation, recovering
// from degraded mode without a restart (the ENOSPC probe path). images
// must hold the latest contents of every dirty buffered page — pages
// whose newest image exists only in the poisoned log (the engine
// collects them via BufferPool.DirtyImages before calling, and marks
// them logged again after success).
//
// The acknowledged state is (data file ∪ synced log prefix); the
// rebuild preserves it: the old log's valid prefix is archived, then a
// fresh log containing the current meta record, every dirty image, and
// a commit mark is written to a temp file, fsynced, and renamed over
// the old one. Nothing is acknowledged in between, and a crash at any
// point leaves either the old valid prefix or the complete new
// generation to replay.
func (d *DiskManager) RebuildWAL(images map[PageID][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.wal == nil {
		return nil
	}
	// The durable valid prefix of the old generation. Flush what we can
	// first (best effort — the writer may be poisoned mid-buffer).
	d.wal.w.Flush()
	oldLog, err := os.ReadFile(d.walPath)
	if err != nil {
		return fmt.Errorf("storage: rebuild: read old wal: %w", err)
	}
	valid, _, _ := scanWAL(oldLog, nil)

	// Assemble the new generation.
	var link [8]byte
	binary.LittleEndian.PutUint32(link[0:], d.numPages)
	binary.LittleEndian.PutUint32(link[4:], uint32(d.freeHead))
	var fresh []byte
	fresh = append(fresh, encodeWALRecord(walMeta, 0, link[:])...)
	for id, img := range images {
		if len(img) != PageSize {
			return fmt.Errorf("storage: rebuild: image for page %d is %d bytes", id, len(img))
		}
		fresh = append(fresh, encodeWALRecord(walPageImage, id, img)...)
	}
	fresh = append(fresh, encodeWALRecord(walCommit, 0, nil)...)

	tmpPath := d.walPath + ".rebuild"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: rebuild: create new wal: %w", err)
	}
	if _, err := tmp.Write(fresh); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("storage: rebuild: write new wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("storage: rebuild: sync new wal: %w", err)
	}

	// Preserve the old generation's history before discarding it.
	if d.archiveDir != "" && valid > 0 {
		if _, err := writeSegment(d.archiveDir, oldLog[:valid], d.wal.base); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("storage: rebuild: archive old wal: %w", err)
		}
	}
	if err := os.Rename(tmpPath, d.walPath); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("storage: rebuild: publish new wal: %w", err)
	}
	newBase := d.wal.base + valid
	oldF := d.wal.f
	if _, err := tmp.Seek(int64(len(fresh)), 0); err != nil {
		return fmt.Errorf("storage: rebuild: seek new wal: %w", err)
	}
	d.wal = &wal{
		f:      tmp,
		w:      bufio.NewWriterSize(tmp, 1<<16),
		base:   newBase,
		size:   int64(len(fresh)),
		synced: int64(len(fresh)),
		marked: int64(len(fresh)),
		stats:  d.wal.stats,
	}
	oldF.Close()
	obsWALRebuilds.Inc()
	return nil
}

// VerifyChecksums reads every page frame in the file and returns the
// IDs of pages whose checksum does not verify (or that are torn
// short). Used by the crash harness and fsck-style tooling.
func (d *DiskManager) VerifyChecksums() ([]PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	var bad []PageID
	for id := PageID(0); uint32(id) < d.numPages; id++ {
		n, err := d.f.ReadAt(d.frame[:], int64(id)*DiskFrameSize)
		if n < DiskFrameSize {
			if err != nil && err != io.EOF {
				return bad, fmt.Errorf("storage: verify page %d: %w", id, err)
			}
			bad = append(bad, id)
			continue
		}
		if !verifyFrame(d.frame[:]) {
			bad = append(bad, id)
		}
	}
	return bad, nil
}

// NumPages returns the number of pages in the file (including meta).
func (d *DiskManager) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// Stats returns a snapshot of physical I/O counters.
func (d *DiskManager) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Sync flushes the data file (and any pending WAL records) to stable
// storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.wal != nil {
		if err := d.wal.sync(); err != nil {
			return err
		}
	}
	return d.f.Sync()
}

// Close releases the underlying files. Further operations fail. Close
// does not checkpoint; callers wanting a clean (no-recovery) shutdown
// flush the buffer pool and call Checkpoint first, as Engine.Close
// does.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	if d.wal != nil {
		if err := d.wal.close(); err != nil {
			firstErr = err
		}
	}
	if err := d.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
