// Package storage implements the storage manager of PREDATOR-Go: a
// file-backed disk manager, slotted pages, an LRU buffer pool, and heap
// files with RID-addressed records. It plays the role of the Shore
// storage manager in the paper's PREDATOR stack.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"predator/internal/obs"
)

// Process-wide physical-I/O metrics (all disk managers report here).
var (
	obsPageReads  = obs.Default.Counter("predator_storage_page_reads_total")
	obsPageWrites = obs.Default.Counter("predator_storage_page_writes_total")
	obsPageAllocs = obs.Default.Counter("predator_storage_page_allocs_total")
)

// PageSize is the size of every on-disk page in bytes.
const PageSize = 8192

// PageID identifies a page within a database file. Page 0 is the meta
// page and is never handed out.
type PageID uint32

// InvalidPageID is the nil page reference (end of chains, etc.).
const InvalidPageID PageID = 0xFFFFFFFF

const (
	metaMagic   = 0x50524544 // "PRED"
	metaVersion = 1
)

// ErrClosed is returned by operations on a closed disk manager.
var ErrClosed = errors.New("storage: disk manager is closed")

// DiskManager allocates, reads and writes fixed-size pages in a single
// database file. Deallocated pages are kept on a persistent free list
// (chained through the first 4 bytes of each free page) and reused by
// subsequent allocations.
type DiskManager struct {
	mu       sync.Mutex
	f        *os.File
	numPages uint32 // includes the meta page
	freeHead PageID
	closed   bool

	// Stats counts physical I/O for calibration experiments.
	stats DiskStats
}

// DiskStats reports physical page I/O counts.
type DiskStats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
}

// OpenDisk opens (or creates) the database file at path.
func OpenDisk(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	d := &DiskManager{f: f}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if info.Size() == 0 {
		// Fresh file: write the meta page.
		d.numPages = 1
		d.freeHead = InvalidPageID
		if err := d.writeMetaLocked(); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, info.Size())
	}
	var meta [PageSize]byte
	if _, err := f.ReadAt(meta[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read meta page: %w", err)
	}
	if binary.LittleEndian.Uint32(meta[0:]) != metaMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a PREDATOR database file", path)
	}
	if v := binary.LittleEndian.Uint32(meta[4:]); v != metaVersion {
		f.Close()
		return nil, fmt.Errorf("storage: unsupported database version %d", v)
	}
	d.numPages = binary.LittleEndian.Uint32(meta[8:])
	d.freeHead = PageID(binary.LittleEndian.Uint32(meta[12:]))
	return d, nil
}

func (d *DiskManager) writeMetaLocked() error {
	var meta [PageSize]byte
	binary.LittleEndian.PutUint32(meta[0:], metaMagic)
	binary.LittleEndian.PutUint32(meta[4:], metaVersion)
	binary.LittleEndian.PutUint32(meta[8:], d.numPages)
	binary.LittleEndian.PutUint32(meta[12:], uint32(d.freeHead))
	if _, err := d.f.WriteAt(meta[:], 0); err != nil {
		return fmt.Errorf("storage: write meta page: %w", err)
	}
	return nil
}

// Allocate returns a fresh page ID, reusing a freed page if one exists.
// The page contents are undefined; callers must initialize them.
func (d *DiskManager) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPageID, ErrClosed
	}
	d.stats.Allocs++
	obsPageAllocs.Inc()
	if d.freeHead != InvalidPageID {
		id := d.freeHead
		var hdr [4]byte
		if _, err := d.f.ReadAt(hdr[:], int64(id)*PageSize); err != nil {
			return InvalidPageID, fmt.Errorf("storage: read free page %d: %w", id, err)
		}
		d.freeHead = PageID(binary.LittleEndian.Uint32(hdr[:]))
		if err := d.writeMetaLocked(); err != nil {
			return InvalidPageID, err
		}
		return id, nil
	}
	id := PageID(d.numPages)
	d.numPages++
	// Extend the file so reads of the new page succeed.
	var zero [PageSize]byte
	if _, err := d.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		d.numPages--
		return InvalidPageID, fmt.Errorf("storage: extend file for page %d: %w", id, err)
	}
	if err := d.writeMetaLocked(); err != nil {
		return InvalidPageID, err
	}
	return id, nil
}

// Free returns a page to the free list for reuse.
func (d *DiskManager) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: cannot free page %d", id)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(d.freeHead))
	if _, err := d.f.WriteAt(hdr[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write free link on page %d: %w", id, err)
	}
	d.freeHead = id
	return d.writeMetaLocked()
}

// Read fills buf (which must be PageSize bytes) with the page contents.
func (d *DiskManager) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: read of invalid page %d (file has %d pages)", id, d.numPages)
	}
	d.stats.Reads++
	obsPageReads.Inc()
	if _, err := d.f.ReadAt(buf, int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write stores buf (PageSize bytes) as the page contents.
func (d *DiskManager) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != PageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), PageSize)
	}
	if id == 0 || uint32(id) >= d.numPages {
		return fmt.Errorf("storage: write of invalid page %d", id)
	}
	d.stats.Writes++
	obsPageWrites.Inc()
	if _, err := d.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages returns the number of pages in the file (including meta).
func (d *DiskManager) NumPages() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// Stats returns a snapshot of physical I/O counters.
func (d *DiskManager) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Sync flushes the file to stable storage.
func (d *DiskManager) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Close releases the underlying file. Further operations fail.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
