package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	obspkg "predator/internal/obs"
)

// WAL archiving and point-in-time restore. At every checkpoint (and at
// crash recovery) the retiring log generation is preserved verbatim as
// a segment file in the archive directory before the live log is
// truncated, so the archive holds the complete, contiguous record
// stream since the database was created (or since archiving was
// enabled). Segment names carry the global LSN of their first byte:
//
//	segment-<start lsn, 16 hex digits>.wal
//
// A base backup (BACKUP TO '<dir>') pairs a fuzzy copy of the data
// file with a manifest naming the checkpoint fence LSNs; restore
// copies the base and replays every archived record in [start, target)
// on top of it — full page images make the replay idempotent, which is
// what lets the base copy proceed while writers continue.

// Archive metrics (process-wide).
var (
	obsArchiveSegments = obspkg.Default.Counter("predator_storage_archive_segments_total")
	obsArchiveBytes    = obspkg.Default.Counter("predator_storage_archive_bytes_total")
)

// segmentPrefix/-Suffix frame archive file names.
const (
	segmentPrefix = "segment-"
	segmentSuffix = ".wal"

	// BaseFileName and ManifestFileName are the fixed names inside a
	// backup directory.
	BaseFileName     = "base.db"
	ManifestFileName = "MANIFEST.json"
)

// segmentName renders the canonical file name for a segment starting
// at the given global LSN.
func segmentName(start int64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, start, segmentSuffix)
}

// Segment describes one archived WAL segment.
type Segment struct {
	Path  string
	Start int64 // global LSN of the first byte
	Size  int64
}

// End returns the global LSN one past the segment's last byte.
func (s Segment) End() int64 { return s.Start + s.Size }

// ListSegments enumerates the archive directory's segments in LSN
// order. Files that do not match the naming scheme are ignored.
func ListSegments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: list archive %s: %w", dir, err)
	}
	var segs []Segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		start, err := strconv.ParseInt(hexPart, 16, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("storage: stat segment %s: %w", name, err)
		}
		segs = append(segs, Segment{Path: filepath.Join(dir, name), Start: start, Size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	return segs, nil
}

// archivedEnd returns the global LSN one past the newest archived byte
// (0 when the archive is empty): the base the next log generation
// continues from.
func archivedEnd(dir string) (int64, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	var end int64
	for _, s := range segs {
		if s.End() > end {
			end = s.End()
		}
	}
	return end, nil
}

// lastSegmentMatches reports whether the newest archived segment holds
// exactly these log bytes. Crash recovery uses it to recognize a
// checkpoint that archived its generation but died before truncating
// the live log — re-archiving would duplicate the records at shifted
// LSNs.
func lastSegmentMatches(dir string, log []byte) bool {
	segs, err := ListSegments(dir)
	if err != nil || len(segs) == 0 {
		return false
	}
	last := segs[len(segs)-1]
	if last.Size != int64(len(log)) {
		return false
	}
	data, err := os.ReadFile(last.Path)
	if err != nil {
		return false
	}
	return string(data) == string(log)
}

// writeSegment durably stores log bytes as the segment starting at the
// given global LSN: write to a temp file, fsync, rename into place.
// The archive fault point fires here (both the crash and the error
// matrix).
func writeSegment(dir string, log []byte, start int64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("storage: create archive dir: %w", err)
	}
	final := filepath.Join(dir, segmentName(start))
	tmp := final + ".tmp"
	fireFault("archive", func() {
		os.WriteFile(tmp, log[:len(log)/2], 0o644)
	})
	if err := fireFaultIO("archive", "eio", "enospc", "fsyncfail"); err != nil {
		return "", fmt.Errorf("storage: archive segment: %w", err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("storage: create segment: %w", err)
	}
	if _, err := f.Write(log); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("storage: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("storage: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("storage: close segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("storage: publish segment: %w", err)
	}
	syncDir(dir)
	obsArchiveSegments.Inc()
	obsArchiveBytes.Add(int64(len(log)))
	return final, nil
}

// syncDir fsyncs a directory so a rename into it survives a crash
// (best-effort: not every filesystem supports directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// VerifySegment scans an archived segment and reports its record count.
// Archived segments are complete by construction, so a torn tail or a
// bad CRC is corruption, not a crash artifact.
func VerifySegment(seg Segment) (records int, err error) {
	data, err := os.ReadFile(seg.Path)
	if err != nil {
		return 0, fmt.Errorf("storage: read segment %s: %w", seg.Path, err)
	}
	valid, torn, _ := scanWAL(data, func(walRecord) error { records++; return nil })
	if torn || valid != int64(len(data)) {
		return records, fmt.Errorf("storage: segment %s corrupt after %d bytes (%d valid records): %w",
			filepath.Base(seg.Path), valid, records, ErrChecksum)
	}
	return records, nil
}

// BackupManifest records the checkpoint fence around a base backup.
// The base copy is fuzzy — writers continue while it runs — so the
// backup is consistent only once the archive through EndLSN has been
// replayed on top of it; any restore target at or past EndLSN is then
// exact.
type BackupManifest struct {
	// StartLSN is the global LSN of the checkpoint fence taken before
	// the base copy began: every record at or past it must be replayed.
	StartLSN int64 `json:"start_lsn"`
	// EndLSN is the global LSN of the checkpoint taken after the copy
	// finished: the earliest valid restore target.
	EndLSN int64 `json:"end_lsn"`
	// Pages is the page count of the copied data file.
	Pages uint32 `json:"pages"`
	// CreatedAt is when the backup completed (RFC 3339).
	CreatedAt string `json:"created_at"`
}

// WriteManifest stores the manifest in the backup directory, stamping
// CreatedAt if the caller left it empty.
func WriteManifest(dir string, m BackupManifest) error {
	if m.CreatedAt == "" {
		m.CreatedAt = nowRFC3339()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestFileName)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadManifest loads a backup directory's manifest.
func ReadManifest(dir string) (BackupManifest, error) {
	var m BackupManifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestFileName))
	if err != nil {
		return m, fmt.Errorf("storage: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("storage: parse manifest: %w", err)
	}
	return m, nil
}

// RestoreInfo describes a completed point-in-time restore.
type RestoreInfo struct {
	// TargetLSN is the LSN the restore stopped (exclusively) before.
	TargetLSN int64
	// Segments is how many archive segments contributed records.
	Segments int
	// Records is how many log records were applied.
	Records int
}

// Restore materializes the database as of targetLSN at outPath: the
// base backup in backupDir is copied and every archived record in
// [manifest.StartLSN, targetLSN) is replayed on top. targetLSN <= 0
// means "latest archived". The target must be at or past the backup's
// EndLSN (before that the fuzzy base copy is not yet consistent) and
// at or before the end of the contiguous archived history.
func Restore(backupDir, archiveDir, outPath string, targetLSN int64) (RestoreInfo, error) {
	var info RestoreInfo
	m, err := ReadManifest(backupDir)
	if err != nil {
		return info, err
	}
	segs, err := ListSegments(archiveDir)
	if err != nil {
		return info, err
	}
	// The replay chain: contiguous segments from StartLSN forward.
	var chain []Segment
	next := m.StartLSN
	for _, s := range segs {
		if s.End() <= m.StartLSN {
			continue // history from before the backup fence
		}
		if s.Start > next {
			break // gap: archived history ends at next
		}
		if s.Start != next && !(s.Start <= m.StartLSN && s.End() > m.StartLSN) {
			continue // overlap that neither starts the chain nor extends it
		}
		chain = append(chain, s)
		next = s.End()
	}
	if targetLSN <= 0 {
		targetLSN = next
	}
	info.TargetLSN = targetLSN
	if targetLSN < m.EndLSN {
		return info, fmt.Errorf("storage: restore target lsn %d predates the backup's consistency point %d (the base copy is fuzzy before it)", targetLSN, m.EndLSN)
	}
	if targetLSN > next {
		return info, fmt.Errorf("storage: restore target lsn %d beyond archived history (contiguous through %d)", targetLSN, next)
	}

	// Copy the base.
	if err := copyFile(filepath.Join(backupDir, BaseFileName), outPath); err != nil {
		return info, err
	}
	out, err := os.OpenFile(outPath, os.O_RDWR, 0o644)
	if err != nil {
		return info, fmt.Errorf("storage: open restore target: %w", err)
	}
	defer out.Close()

	// Replay [StartLSN, targetLSN).
	var metaSeen bool
	var numPages, freeHead uint32
	var metaLSN uint64
	for _, s := range chain {
		if s.Start >= targetLSN {
			break
		}
		data, err := os.ReadFile(s.Path)
		if err != nil {
			return info, fmt.Errorf("storage: read segment %s: %w", s.Path, err)
		}
		used := false
		_, torn, err := scanWAL(data, func(rec walRecord) error {
			lsn := s.Start + int64(rec.off)
			if lsn < m.StartLSN || lsn >= targetLSN {
				return nil
			}
			used = true
			info.Records++
			switch rec.typ {
			case walPageImage:
				if err := writeFrameTo(out, rec.page, rec.payload, uint64(lsn)); err != nil {
					return fmt.Errorf("storage: restore: redo page %d: %w", rec.page, err)
				}
			case walMeta:
				metaSeen = true
				numPages = binary.LittleEndian.Uint32(rec.payload[0:])
				freeHead = binary.LittleEndian.Uint32(rec.payload[4:])
				metaLSN = uint64(lsn)
			}
			return nil
		})
		if err != nil {
			return info, err
		}
		if torn {
			return info, fmt.Errorf("storage: segment %s corrupt: %w", filepath.Base(s.Path), ErrChecksum)
		}
		if used {
			info.Segments++
		}
	}
	if metaSeen {
		if err := writeFrameTo(out, 0, encodeMetaPayload(numPages, freeHead), metaLSN); err != nil {
			return info, fmt.Errorf("storage: restore: redo meta page: %w", err)
		}
	}
	if err := healFramesAfterReplay(out); err != nil {
		return info, err
	}
	if err := out.Sync(); err != nil {
		return info, fmt.Errorf("storage: restore: fsync: %w", err)
	}
	// A stale WAL next to the restored file must not be replayed over it.
	os.Remove(WALPath(outPath))
	return info, nil
}

// copyFile copies src to dst (truncating) and fsyncs the result.
func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("storage: open %s: %w", src, err)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", dst, err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return fmt.Errorf("storage: copy %s: %w", dst, err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("storage: sync %s: %w", dst, err)
	}
	return out.Close()
}

// nowRFC3339 stamps manifests (separated for test override).
var nowRFC3339 = func() string { return time.Now().UTC().Format(time.RFC3339) }
