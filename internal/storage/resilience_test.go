package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// Tests for the storage-resilience surface: the fsync-failure (sticky
// WAL error) contract, error-mode fault injection, WAL-backed read
// repair, archiving + point-in-time restore, and the scrubber's repair
// sources.

// openArchived opens a disk manager with the WAL and archiving on.
func openArchived(t *testing.T, path, archiveDir string) *DiskManager {
	t.Helper()
	d, err := OpenDiskOptions(path, DiskOptions{
		Durability: DurabilityCommit,
		ArchiveDir: archiveDir,
	})
	if err != nil {
		t.Fatalf("OpenDiskOptions: %v", err)
	}
	return d
}

// logAndWrite applies one page mutation the way the engine's buffer
// pool does: WAL image first, then the data-file frame, then a
// statement-boundary commit.
func logAndWrite(t *testing.T, d *DiskManager, id PageID, fill byte) []byte {
	t.Helper()
	img := bytes.Repeat([]byte{fill}, PageSize)
	if err := d.LogPageImage(id, img); err != nil {
		t.Fatalf("LogPageImage(%#x): %v", fill, err)
	}
	if err := d.Write(id, img); err != nil {
		t.Fatalf("Write(%#x): %v", fill, err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit(%#x): %v", fill, err)
	}
	return img
}

// corruptFrame flips a payload byte of the page's on-disk frame behind
// the manager's back (simulated bit rot).
func corruptFrame(t *testing.T, path string, id PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open for corruption: %v", err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{0xEE, 0xEE, 0xEE}, int64(id)*DiskFrameSize+frameHeaderSize+11); err != nil {
		t.Fatalf("corrupt frame: %v", err)
	}
}

// TestFsyncFailureContract (fsyncgate): the first failed WAL fsync is
// sticky and fatal for buffered data. Later appends and commits fail
// fast, and a checkpoint must refuse to truncate the log.
func TestFsyncFailureContract(t *testing.T) {
	t.Cleanup(func() { ArmFault("") })
	path := filepath.Join(t.TempDir(), "fsyncgate.db")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.LogPageImage(id, bytes.Repeat([]byte{1}, PageSize)); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("healthy Commit: %v", err)
	}
	walSize := d.WALSize()

	ArmFault("walwrite:fsyncfail")
	if err := d.LogPageImage(id, bytes.Repeat([]byte{2}, PageSize)); err != nil {
		t.Fatalf("LogPageImage (append still buffers): %v", err)
	}
	if err := d.Commit(); err == nil {
		t.Fatalf("Commit succeeded with failing fsync")
	}
	if err := d.WALErr(); err == nil {
		t.Fatalf("WALErr not sticky after failed fsync")
	}

	// Contract: even with the fault gone, the log stays poisoned — the
	// kernel may have dropped the buffered pages, so pretending the
	// retry worked would silently lose acknowledged data.
	ArmFault("")
	if err := d.LogPageImage(id, bytes.Repeat([]byte{3}, PageSize)); err == nil {
		t.Fatalf("append after failed fsync did not fail fast")
	}
	if err := d.Commit(); err == nil {
		t.Fatalf("commit after failed fsync did not fail fast")
	}
	if err := d.Checkpoint(); err == nil {
		t.Fatalf("checkpoint truncated a poisoned WAL")
	}
	if info, err := os.Stat(WALPath(path)); err != nil || info.Size() < walSize {
		t.Fatalf("poisoned WAL was truncated: size=%v err=%v (want >= %d)", info, err, walSize)
	}
}

// TestErrorModeFaultsPersist: eio/enospc faults fire on every hit once
// armed (a full disk stays full) and clear when disarmed.
func TestErrorModeFaultsPersist(t *testing.T) {
	t.Cleanup(func() { ArmFault("") })
	path := filepath.Join(t.TempDir(), "enospc.db")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	ArmFault("walwrite:enospc")
	for i := 0; i < 3; i++ {
		err := d.LogPageImage(id, make([]byte, PageSize))
		if !IsDiskFull(err) {
			t.Fatalf("append %d under enospc fault: got %v, want ENOSPC", i, err)
		}
	}
	if !errors.Is(d.WALErr(), syscall.ENOSPC) {
		t.Fatalf("WALErr = %v, want ENOSPC", d.WALErr())
	}
}

// TestRebuildWALRecoversFromDiskFull: after ENOSPC poisons the log,
// RebuildWAL writes a fresh generation holding the dirty images and
// the manager is writable and durable again.
func TestRebuildWALRecoversFromDiskFull(t *testing.T) {
	t.Cleanup(func() { ArmFault("") })
	path := filepath.Join(t.TempDir(), "rebuild.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	committed := logAndWrite(t, d, id, 0x0A)

	ArmFault("walwrite:enospc")
	dirty := bytes.Repeat([]byte{0x0B}, PageSize)
	if err := d.LogPageImage(id, dirty); !IsDiskFull(err) {
		t.Fatalf("append under enospc: got %v", err)
	}
	ArmFault("") // space freed

	if err := d.RebuildWAL(map[PageID][]byte{id: dirty}); err != nil {
		t.Fatalf("RebuildWAL: %v", err)
	}
	if err := d.WALErr(); err != nil {
		t.Fatalf("WALErr after rebuild: %v", err)
	}
	// Writable again, and the rebuilt log carries the dirty image.
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit after rebuild: %v", err)
	}
	crashDisk(d)
	d2 := openDurable(t, path)
	defer d2.Close()
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read after rebuild+crash: %v", err)
	}
	if !bytes.Equal(got, dirty) {
		if bytes.Equal(got, committed) {
			t.Fatalf("rebuilt WAL lost the dirty image (only pre-fault state survived)")
		}
		t.Fatalf("page content wrong after rebuild+crash")
	}
}

// TestReadRepairsFromWAL: a checksum-bad frame whose newest image is
// still in the live WAL is transparently re-read from the log.
func TestReadRepairsFromWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "readrepair.db")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := logAndWrite(t, d, id, 0x5C)
	corruptFrame(t, path, id)

	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil {
		t.Fatalf("Read with WAL-backed repair: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("repaired read returned wrong content")
	}
	if err := d.VerifyPage(id); err != nil {
		t.Fatalf("frame not healed on disk after read repair: %v", err)
	}
}

// TestCheckpointArchivesGenerations: each checkpoint rolls the retiring
// log generation into a contiguous archived segment chain.
func TestCheckpointArchivesGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arch.db")
	arch := filepath.Join(dir, "archive")
	d := openArchived(t, path, arch)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for i := 0; i < 3; i++ {
		logAndWrite(t, d, id, byte(0x10+i))
		if err := d.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	segs, err := ListSegments(arch)
	if err != nil {
		t.Fatalf("ListSegments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d archived segments, want >= 3", len(segs))
	}
	next := segs[0].Start
	if next != 0 {
		t.Fatalf("first segment starts at %d, want 0", next)
	}
	for _, seg := range segs {
		if seg.Start != next {
			t.Fatalf("archive gap: segment at %d, expected %d", seg.Start, next)
		}
		if _, err := VerifySegment(seg); err != nil {
			t.Fatalf("VerifySegment(%s): %v", seg.Path, err)
		}
		next = seg.End()
	}
	if got := d.CurrentLSN(); got != next {
		t.Fatalf("CurrentLSN = %d, want archived end %d", got, next)
	}
}

// TestGlobalLSNSurvivesReopen: the global LSN keeps counting across
// close/reopen, recovered from the archive chain.
func TestGlobalLSNSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lsn.db")
	arch := filepath.Join(dir, "archive")
	d := openArchived(t, path, arch)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	logAndWrite(t, d, id, 0x21)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	want := d.CurrentLSN()
	if want == 0 {
		t.Fatalf("CurrentLSN is 0 after archived checkpoint")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openArchived(t, path, arch)
	defer d2.Close()
	if got := d2.CurrentLSN(); got != want {
		t.Fatalf("CurrentLSN after reopen = %d, want %d", got, want)
	}
}

// TestBackupRestorePITR drives the full point-in-time story at the
// storage layer: base backup under checkpoint fences, more writes,
// restore to an intermediate statement-boundary LSN (exact contents of
// that moment) and to the latest LSN.
func TestBackupRestorePITR(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pitr.db")
	arch := filepath.Join(dir, "archive")
	backup := filepath.Join(dir, "backup")
	d := openArchived(t, path, arch)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	logAndWrite(t, d, id, 0x01)

	// Online backup, the way the engine does it: fence checkpoint,
	// fuzzy base copy, closing fence, manifest.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("fence checkpoint: %v", err)
	}
	m := BackupManifest{StartLSN: d.CurrentLSN()}
	if err := d.CopyBaseTo(backup); err != nil {
		t.Fatalf("CopyBaseTo: %v", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("closing checkpoint: %v", err)
	}
	m.EndLSN = d.CurrentLSN()
	m.Pages = d.NumPages()
	if err := WriteManifest(backup, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}

	midImg := logAndWrite(t, d, id, 0x02)
	midLSN := d.CurrentLSN() // statement boundary: just past 0x02's commit mark
	lastImg := logAndWrite(t, d, id, 0x03)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}

	// Restore to the intermediate point: contents must be exactly the
	// 0x02 state, with no trace of the later write.
	midOut := filepath.Join(dir, "mid.db")
	info, err := Restore(backup, arch, midOut, midLSN)
	if err != nil {
		t.Fatalf("Restore(mid): %v", err)
	}
	if info.TargetLSN != midLSN {
		t.Fatalf("restored to %d, want %d", info.TargetLSN, midLSN)
	}
	checkPage(t, midOut, id, midImg)

	// Restore to the latest archived LSN.
	lastOut := filepath.Join(dir, "last.db")
	info, err = Restore(backup, arch, lastOut, 0)
	if err != nil {
		t.Fatalf("Restore(latest): %v", err)
	}
	if info.TargetLSN != d.CurrentLSN() {
		t.Fatalf("latest restore target = %d, want %d", info.TargetLSN, d.CurrentLSN())
	}
	checkPage(t, lastOut, id, lastImg)

	// A target before the backup's consistency point must be refused.
	if _, err := Restore(backup, arch, filepath.Join(dir, "bad.db"), m.EndLSN-1); err == nil {
		t.Fatalf("Restore before EndLSN did not fail")
	}
	// So must a target past the archived history.
	if _, err := Restore(backup, arch, filepath.Join(dir, "bad2.db"), d.CurrentLSN()+1); err == nil {
		t.Fatalf("Restore past archived history did not fail")
	}
}

// checkPage opens a restored database file and asserts the page's
// exact contents and clean checksums.
func checkPage(t *testing.T, path string, id PageID, want []byte) {
	t.Helper()
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("open restored %s: %v", path, err)
	}
	defer d.Close()
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil {
		t.Fatalf("read restored page: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored page content mismatch in %s", filepath.Base(path))
	}
	if bad, err := d.VerifyChecksums(); err != nil || len(bad) != 0 {
		t.Fatalf("restored file checksums: bad=%v err=%v", bad, err)
	}
}

// TestScrubberRepairsFromWAL: the scrubber finds a corrupt frame and
// repairs it from the live WAL (freshest source).
func TestScrubberRepairsFromWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scrubwal.db")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := logAndWrite(t, d, id, 0x66)
	corruptFrame(t, path, id)

	s := NewScrubber(d, ScrubConfig{PagePace: -1})
	s.RunOnce(nil)
	st := s.Status()
	if st.Corrupt == 0 || st.Repaired == 0 || st.Unrepaired != 0 {
		t.Fatalf("scrub status after WAL repair: %+v", st)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("page after scrub repair: err=%v match=%v", err, bytes.Equal(got, want))
	}
}

// TestScrubberRepairsFromArchive: after a checkpoint truncates the
// live WAL, the newest archived image is the repair source.
func TestScrubberRepairsFromArchive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scrubarch.db")
	arch := filepath.Join(dir, "archive")
	d := openArchived(t, path, arch)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	logAndWrite(t, d, id, 0x70) // older archived image — must not win
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	want := logAndWrite(t, d, id, 0x77)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	corruptFrame(t, path, id)

	s := NewScrubber(d, ScrubConfig{PagePace: -1})
	s.RunOnce(nil)
	if st := s.Status(); st.Repaired == 0 || st.Unrepaired != 0 {
		t.Fatalf("scrub status after archive repair: %+v", st)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("archive repair restored wrong generation: err=%v", err)
	}
}

// TestScrubberRepairsFromBackup: with no WAL image and no archive, the
// base backup is the last-resort repair source.
func TestScrubberRepairsFromBackup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scrubbak.db")
	backup := filepath.Join(dir, "backup")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := logAndWrite(t, d, id, 0x88)
	if err := d.Checkpoint(); err != nil { // truncates the WAL; no archive
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := d.CopyBaseTo(backup); err != nil {
		t.Fatalf("CopyBaseTo: %v", err)
	}
	corruptFrame(t, path, id)

	s := NewScrubber(d, ScrubConfig{PagePace: -1, BackupDir: backup})
	s.RunOnce(nil)
	if st := s.Status(); st.Repaired == 0 || st.Unrepaired != 0 {
		t.Fatalf("scrub status after backup repair: %+v", st)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("backup repair failed: err=%v", err)
	}
}

// TestScrubberReportsCorruptSegment: archived history cannot be
// repaired, only reported.
func TestScrubberReportsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scrubseg.db")
	arch := filepath.Join(dir, "archive")
	d := openArchived(t, path, arch)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	logAndWrite(t, d, id, 0x99)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, err := ListSegments(arch)
	if err != nil || len(segs) == 0 {
		t.Fatalf("ListSegments: %v (%d)", err, len(segs))
	}
	f, err := os.OpenFile(segs[0].Path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	f.WriteAt([]byte{0xFF, 0xFF}, walHeaderSize+3)
	f.Close()

	s := NewScrubber(d, ScrubConfig{PagePace: -1})
	s.RunOnce(nil)
	st := s.Status()
	if st.Corrupt == 0 || st.Unrepaired == 0 || st.LastError == "" {
		t.Fatalf("corrupt segment not reported: %+v", st)
	}
}
