package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newDisk(t *testing.T) *DiskManager {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "test.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDiskAllocateReadWrite(t *testing.T) {
	d := newDisk(t)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("meta page handed out")
	}
	buf := make([]byte, PageSize)
	copy(buf, "hello page")
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("read returned different contents than written")
	}
}

func TestDiskInvalidAccess(t *testing.T) {
	d := newDisk(t)
	buf := make([]byte, PageSize)
	if err := d.Read(0, buf); err == nil {
		t.Error("reading meta page via Read should fail")
	}
	if err := d.Read(42, buf); err == nil {
		t.Error("reading unallocated page should fail")
	}
	if err := d.Write(42, buf); err == nil {
		t.Error("writing unallocated page should fail")
	}
	if err := d.Read(1, buf[:10]); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestDiskFreeListReuse(t *testing.T) {
	d := newDisk(t)
	a, _ := d.Allocate()
	b, _ := d.Allocate()
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(b); err != nil {
		t.Fatal(err)
	}
	c, _ := d.Allocate()
	e, _ := d.Allocate()
	if c != b || e != a {
		t.Errorf("free pages not reused LIFO: got %d,%d want %d,%d", c, e, b, a)
	}
	f, _ := d.Allocate()
	if f != 3 {
		t.Errorf("expected fresh page 3 after free list drained, got %d", f)
	}
}

func TestDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := d.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, "persisted")
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	freed, _ := d.Allocate()
	if err := d.Free(freed); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:9]) != "persisted" {
		t.Error("page contents lost across reopen")
	}
	// The free list must survive reopen too.
	reused, _ := d2.Allocate()
	if reused != freed {
		t.Errorf("free list not persisted: got %d want %d", reused, freed)
	}
}

func TestDiskClosed(t *testing.T) {
	d := newDisk(t)
	d.Close()
	if _, err := d.Allocate(); err != ErrClosed {
		t.Errorf("Allocate after close: %v, want ErrClosed", err)
	}
	if err := d.Read(1, make([]byte, PageSize)); err != ErrClosed {
		t.Errorf("Read after close: %v, want ErrClosed", err)
	}
}

func TestDiskRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.db")
	junk := make([]byte, PageSize)
	copy(junk, "not a database")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path); err == nil {
		t.Error("opening a non-PREDATOR file should fail")
	}
	// A file that is not a multiple of the page size must be rejected.
	path2 := filepath.Join(dir, "short.db")
	if err := os.WriteFile(path2, junk[:100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path2); err == nil {
		t.Error("opening a short file should fail")
	}
}

func TestPageInsertAndRecord(t *testing.T) {
	var buf [PageSize]byte
	p := AsPage(buf[:])
	p.Init()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("")}
	for i, r := range recs {
		slot, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
	}
	for i, want := range recs {
		got, isLarge, _, _, ok := p.Record(i)
		if !ok || isLarge {
			t.Fatalf("Record(%d) missing or large", i)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Record(%d) = %q, want %q", i, got, want)
		}
	}
	if _, _, _, _, ok := p.Record(3); ok {
		t.Error("Record(3) should be absent")
	}
	if _, _, _, _, ok := p.Record(-1); ok {
		t.Error("Record(-1) should be absent")
	}
}

func TestPageDeleteTombstone(t *testing.T) {
	var buf [PageSize]byte
	p := AsPage(buf[:])
	p.Init()
	p.Insert([]byte("a"))
	p.Insert([]byte("b"))
	if _, _, ok := p.Delete(0); !ok {
		t.Fatal("delete of live record failed")
	}
	if _, _, ok := p.Delete(0); ok {
		t.Error("double delete should report not-ok")
	}
	if _, _, _, _, ok := p.Record(0); ok {
		t.Error("deleted record still visible")
	}
	if got, _, _, _, ok := p.Record(1); !ok || string(got) != "b" {
		t.Error("neighbor record damaged by delete")
	}
}

func TestPageFull(t *testing.T) {
	var buf [PageSize]byte
	p := AsPage(buf[:])
	p.Init()
	rec := make([]byte, 1000)
	n := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			break
		}
		n++
	}
	if n != (PageSize-pageHeaderSize)/(1000+slotSize) {
		t.Errorf("fit %d 1000-byte records, want %d", n, (PageSize-pageHeaderSize)/(1000+slotSize))
	}
	if p.CanFit(PageSize) {
		t.Error("CanFit(PageSize) should be false")
	}
}

func TestPageChainLink(t *testing.T) {
	var buf [PageSize]byte
	p := AsPage(buf[:])
	p.Init()
	if p.Next() != InvalidPageID {
		t.Error("fresh page should have no next")
	}
	p.SetNext(77)
	if p.Next() != 77 {
		t.Error("SetNext not reflected in Next")
	}
}

func newPool(t *testing.T, capacity int) (*DiskManager, *BufferPool) {
	d := newDisk(t)
	return d, NewBufferPool(d, capacity)
}

func TestBufferPoolHitMiss(t *testing.T) {
	d, bp := newPool(t, 4)
	_ = d
	pp, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := pp.ID()
	copy(pp.Data(), "cached")
	pp.Unpin(true)

	pp2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(pp2.Data()[:6]) != "cached" {
		t.Error("fetch returned wrong contents")
	}
	pp2.Unpin(false)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit 0 misses", st)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	d, bp := newPool(t, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		pp, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = pp.ID()
		pp.Data()[0] = byte(100 + i)
		pp.Unpin(true)
	}
	// Page 0 of ids must have been evicted and written back.
	if bp.Stats().Evictions == 0 {
		t.Fatal("expected at least one eviction")
	}
	buf := make([]byte, PageSize)
	if err := d.Read(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 100 {
		t.Error("evicted dirty page not written back")
	}
	// Re-fetching it must be a miss that reads the stored data.
	pp, err := bp.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if pp.Data()[0] != 100 {
		t.Error("refetched page has wrong contents")
	}
	pp.Unpin(false)
}

func TestBufferPoolAllPinned(t *testing.T) {
	_, bp := newPool(t, 2)
	a, _ := bp.Allocate()
	b, _ := bp.Allocate()
	if _, err := bp.Allocate(); err == nil {
		t.Error("allocating with all frames pinned should fail")
	}
	a.Unpin(false)
	b.Unpin(false)
	c, err := bp.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(false)
}

func TestBufferPoolFlushAll(t *testing.T) {
	d, bp := newPool(t, 4)
	pp, _ := bp.Allocate()
	id := pp.ID()
	pp.Data()[10] = 0xAB
	pp.Unpin(true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[10] != 0xAB {
		t.Error("FlushAll did not persist dirty page")
	}
}

func newHeap(t *testing.T) (*HeapFile, *BufferPool, *DiskManager) {
	d, bp := newPool(t, 16)
	hf, err := CreateHeapFile(d, bp)
	if err != nil {
		t.Fatal(err)
	}
	return hf, bp, d
}

func TestHeapInsertGet(t *testing.T) {
	hf, _, _ := newHeap(t)
	rid, err := hf.Insert([]byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := hf.Get(rid)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(got) != "record one" {
		t.Errorf("Get = %q", got)
	}
	if _, ok, _ := hf.Get(RID{Page: rid.Page, Slot: 99}); ok {
		t.Error("Get of missing slot should report not-ok")
	}
}

func TestHeapMultiPageAndScan(t *testing.T) {
	hf, _, _ := newHeap(t)
	const n = 50
	want := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		rec := make([]byte, 500)
		copy(rec, fmt.Sprintf("rec-%03d", i))
		if _, err := hf.Insert(rec); err != nil {
			t.Fatal(err)
		}
		want[string(rec[:7])] = true
	}
	sc := hf.Scan()
	got := 0
	for sc.Next() {
		key := string(sc.Record()[:7])
		if !want[key] {
			t.Errorf("unexpected record %q", key)
		}
		delete(want, key)
		got++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if got != n {
		t.Errorf("scanned %d records, want %d", got, n)
	}
}

func TestHeapLargeRecords(t *testing.T) {
	hf, _, _ := newHeap(t)
	sizes := []int{MaxInlineRecord + 1, 10000, 3 * PageSize, 100000}
	for _, size := range sizes {
		rec := make([]byte, size)
		rnd := rand.New(rand.NewSource(int64(size)))
		rnd.Read(rec)
		rid, err := hf.Insert(rec)
		if err != nil {
			t.Fatalf("Insert(%d bytes): %v", size, err)
		}
		got, ok, err := hf.Get(rid)
		if err != nil || !ok {
			t.Fatalf("Get(%d bytes): ok=%v err=%v", size, ok, err)
		}
		if !bytes.Equal(got, rec) {
			t.Errorf("large record of %d bytes corrupted", size)
		}
	}
}

func TestHeapLargeRecordScan(t *testing.T) {
	hf, _, _ := newHeap(t)
	big := make([]byte, 25000)
	for i := range big {
		big[i] = byte(i % 251)
	}
	hf.Insert([]byte("small"))
	hf.Insert(big)
	hf.Insert([]byte("tail"))
	var sizes []int
	sc := hf.Scan()
	for sc.Next() {
		sizes = append(sizes, len(sc.Record()))
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(sizes) != 3 || sizes[1] != 25000 {
		t.Errorf("scan sizes = %v", sizes)
	}
}

func TestHeapDelete(t *testing.T) {
	hf, _, d := newHeap(t)
	r1, _ := hf.Insert([]byte("keep"))
	r2, _ := hf.Insert([]byte("drop"))
	big := make([]byte, 30000)
	r3, _ := hf.Insert(big)
	pagesBefore := d.NumPages()

	if ok, err := hf.Delete(r2); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if ok, _ := hf.Delete(r2); ok {
		t.Error("double delete should report false")
	}
	if ok, err := hf.Delete(r3); err != nil || !ok {
		t.Fatalf("Delete large: ok=%v err=%v", ok, err)
	}
	// Freed overflow pages must be reusable.
	if _, err := hf.Insert(big); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != pagesBefore {
		t.Errorf("overflow pages not reused: %d pages before, %d after", pagesBefore, d.NumPages())
	}
	if _, ok, _ := hf.Get(r2); ok {
		t.Error("deleted record still readable")
	}
	if got, ok, _ := hf.Get(r1); !ok || string(got) != "keep" {
		t.Error("surviving record damaged")
	}
	// Scan must skip tombstones.
	count := 0
	for sc := hf.Scan(); sc.Next(); {
		count++
	}
	if count != 2 {
		t.Errorf("scan after delete found %d records, want 2", count)
	}
}

func TestHeapReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBufferPool(d, 8)
	hf, err := CreateHeapFile(d, bp)
	if err != nil {
		t.Fatal(err)
	}
	first := hf.FirstPage()
	hf.Insert([]byte("survivor"))
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	bp2 := NewBufferPool(d2, 8)
	hf2 := OpenHeapFile(d2, bp2, first)
	sc := hf2.Scan()
	if !sc.Next() || string(sc.Record()) != "survivor" {
		t.Fatalf("record lost across reopen (err=%v)", sc.Err())
	}
}

// Property: any sequence of records (sizes 0..20000) round-trips
// through insert + get.
func TestQuickHeapRoundTrip(t *testing.T) {
	hf, _, _ := newHeap(t)
	prop := func(seed int64, sizeBits uint16) bool {
		size := int(sizeBits) % 20000
		rec := make([]byte, size)
		rand.New(rand.NewSource(seed)).Read(rec)
		rid, err := hf.Insert(rec)
		if err != nil {
			return false
		}
		got, ok, err := hf.Get(rid)
		return err == nil && ok && bytes.Equal(got, rec)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
