package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"predator/internal/obs"
)

// Background scrubber: paced checksum verification over data pages and
// archived WAL segments, catching silent corruption before a query
// trips over it. A bad page is repaired from the best available
// durable image — the current WAL generation first (always the newest
// content, since images are logged before frames are written), then
// the newest archived image, then the base backup — and the repair is
// re-verified. Corrupt archive segments cannot be repaired (they *are*
// the history) and are only reported.
//
// The scrubber reads frames under the disk manager's lock page by
// page, so it never blocks writers for more than one frame probe, and
// it sleeps PagePace between probes to bound its I/O share.

// Process-wide scrub metrics.
var (
	obsScrubPasses     = obs.Default.Counter("predator_scrub_passes_total")
	obsScrubPages      = obs.Default.Counter("predator_scrub_pages_total")
	obsScrubSegments   = obs.Default.Counter("predator_scrub_segments_total")
	obsScrubCorrupt    = obs.Default.Counter("predator_scrub_corrupt_total")
	obsScrubRepairs    = obs.Default.Counter("predator_scrub_repairs_total")
	obsScrubUnrepaired = obs.Default.Counter("predator_scrub_unrepaired_total")
)

// ScrubConfig tunes the background scrubber.
type ScrubConfig struct {
	// PagePace is the pause between page probes (the pacing knob; 0
	// scrubs flat out).
	PagePace time.Duration
	// PassPause is the idle time between full passes.
	PassPause time.Duration
	// BackupDir, when non-empty, names a base backup used as the
	// last-resort repair source.
	BackupDir string
}

// ScrubStatus is a snapshot of scrubber progress for SHOW STORAGE.
type ScrubStatus struct {
	Passes     uint64
	Pages      uint64 // frames probed (cumulative)
	Segments   uint64 // archive segments verified (cumulative)
	Corrupt    uint64 // bad frames/segments found
	Repaired   uint64
	Unrepaired uint64
	Progress   float64 // position within the current pass, 0..1
	LastError  string
	Running    bool
}

// Scrubber owns the background verification loop for one disk manager.
type Scrubber struct {
	disk *DiskManager
	cfg  ScrubConfig

	mu     sync.Mutex
	status ScrubStatus

	stop chan struct{}
	done chan struct{}
}

// NewScrubber creates a scrubber (not yet running) for the disk
// manager. Defaults: 2ms page pace, 30s pass pause.
func NewScrubber(d *DiskManager, cfg ScrubConfig) *Scrubber {
	if cfg.PagePace == 0 {
		cfg.PagePace = 2 * time.Millisecond
	}
	if cfg.PassPause == 0 {
		cfg.PassPause = 30 * time.Second
	}
	return &Scrubber{disk: d, cfg: cfg}
}

// Start launches the background loop. No-op if already running.
func (s *Scrubber) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.status.Running {
		return
	}
	s.status.Running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

// Close stops the background loop and waits for it to exit.
func (s *Scrubber) Close() {
	s.mu.Lock()
	if !s.status.Running {
		s.mu.Unlock()
		return
	}
	stop, done := s.stop, s.done
	s.mu.Unlock()
	close(stop)
	<-done
	s.mu.Lock()
	s.status.Running = false
	s.mu.Unlock()
}

// Status snapshots scrubber progress.
func (s *Scrubber) Status() ScrubStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// SetBackupDir points the scrubber at a (new) base backup to repair
// from. The engine calls it after each successful BACKUP TO.
func (s *Scrubber) SetBackupDir(dir string) {
	s.mu.Lock()
	s.cfg.BackupDir = dir
	s.mu.Unlock()
}

// backupDir reads the current repair source under the lock.
func (s *Scrubber) backupDir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.BackupDir
}

func (s *Scrubber) loop(stop, done chan struct{}) {
	defer close(done)
	for {
		s.RunOnce(stop)
		select {
		case <-stop:
			return
		case <-time.After(s.cfg.PassPause):
		}
	}
}

// pace sleeps the page pace, returning false when stopping.
func (s *Scrubber) pace(stop chan struct{}) bool {
	if s.cfg.PagePace <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	select {
	case <-stop:
		return false
	case <-time.After(s.cfg.PagePace):
		return true
	}
}

// RunOnce scrubs every data page and archived segment once. stop (may
// be nil) aborts the pass early. Safe to call directly from tests and
// fsck-style tooling.
func (s *Scrubber) RunOnce(stop chan struct{}) {
	n := s.disk.NumPages()
	for id := PageID(0); uint32(id) < n; id++ {
		s.mu.Lock()
		s.status.Progress = float64(id) / float64(n)
		s.mu.Unlock()
		if err := s.disk.VerifyPage(id); err != nil {
			s.repairPage(id, err)
		}
		s.bump(func(st *ScrubStatus) { st.Pages++ })
		obsScrubPages.Inc()
		if stop != nil && !s.pace(stop) {
			return
		}
	}
	s.scrubArchive(stop)
	s.bump(func(st *ScrubStatus) { st.Passes++; st.Progress = 1 })
	obsScrubPasses.Inc()
}

func (s *Scrubber) bump(f func(*ScrubStatus)) {
	s.mu.Lock()
	f(&s.status)
	s.mu.Unlock()
}

// repairPage tries the repair sources in freshness order and
// re-verifies the page.
func (s *Scrubber) repairPage(id PageID, probeErr error) {
	obsScrubCorrupt.Inc()
	s.bump(func(st *ScrubStatus) { st.Corrupt++ })
	log := obs.Logger()
	source := ""
	if err := s.disk.RepairPageFromWAL(id); err == nil {
		source = "wal"
	} else if img, lsn, ok := s.newestArchivedImage(id); ok {
		if wrote, err := s.disk.RepairPageFrame(id, img, lsn); err == nil && wrote {
			source = "archive"
		}
	}
	if source == "" && s.backupDir() != "" {
		if img, lsn, ok := s.backupImage(id); ok {
			if wrote, err := s.disk.RepairPageFrame(id, img, lsn); err == nil && wrote {
				source = "backup"
			}
		}
	}
	if err := s.disk.VerifyPage(id); err != nil {
		obsScrubUnrepaired.Inc()
		s.bump(func(st *ScrubStatus) {
			st.Unrepaired++
			st.LastError = fmt.Sprintf("page %d unrepairable: %v", id, probeErr)
		})
		log.Error("scrub: corrupt page unrepairable",
			"page", uint32(id), "error", probeErr.Error())
		return
	}
	obsScrubRepairs.Inc()
	s.bump(func(st *ScrubStatus) { st.Repaired++ })
	log.Warn("scrub: repaired corrupt page",
		"page", uint32(id), "source", source, "error", probeErr.Error())
}

// newestArchivedImage finds the latest after-image of the page across
// the archive, newest segment first.
func (s *Scrubber) newestArchivedImage(id PageID) ([]byte, uint64, bool) {
	dir := s.disk.ArchiveDir()
	if dir == "" {
		return nil, 0, false
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, 0, false
	}
	for i := len(segs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(segs[i].Path)
		if err != nil {
			continue
		}
		var img []byte
		var lsn uint64
		scanWAL(data, func(rec walRecord) error {
			if rec.typ == walPageImage && rec.page == id {
				img = append(img[:0], rec.payload...)
				lsn = uint64(segs[i].Start + int64(rec.off))
			}
			return nil
		})
		if img != nil {
			return img, lsn, true
		}
	}
	return nil, 0, false
}

// backupImage reads the page's frame out of the base backup, if it
// verifies there.
func (s *Scrubber) backupImage(id PageID) ([]byte, uint64, bool) {
	f, err := os.Open(filepath.Join(s.backupDir(), BaseFileName))
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	frame := make([]byte, DiskFrameSize)
	if n, _ := f.ReadAt(frame, int64(id)*DiskFrameSize); n < DiskFrameSize {
		return nil, 0, false
	}
	if !verifyFrame(frame) {
		return nil, 0, false
	}
	lsn := binary.LittleEndian.Uint64(frame[8:])
	return frame[frameHeaderSize:], lsn, true
}

// scrubArchive verifies every archived segment's record chain.
func (s *Scrubber) scrubArchive(stop chan struct{}) {
	dir := s.disk.ArchiveDir()
	if dir == "" {
		return
	}
	segs, err := ListSegments(dir)
	if err != nil {
		s.bump(func(st *ScrubStatus) { st.LastError = err.Error() })
		return
	}
	for _, seg := range segs {
		if _, err := VerifySegment(seg); err != nil {
			obsScrubCorrupt.Inc()
			obsScrubUnrepaired.Inc()
			s.bump(func(st *ScrubStatus) {
				st.Corrupt++
				st.Unrepaired++
				st.LastError = err.Error()
			})
			obs.Logger().Error("scrub: corrupt archive segment",
				"segment", filepath.Base(seg.Path), "error", err.Error())
		}
		s.bump(func(st *ScrubStatus) { st.Segments++ })
		obsScrubSegments.Inc()
		if stop != nil && !s.pace(stop) {
			return
		}
	}
}
