package storage

import (
	"encoding/binary"
	"fmt"
)

// RID identifies a record: the page that holds it and its slot number.
type RID struct {
	Page PageID
	Slot uint16
}

// String renders the RID as "page.slot".
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Overflow page layout (for records larger than MaxInlineRecord):
//
//	offset 0: next PageID (4 bytes)
//	offset 4: used        (2 bytes)
//	offset 6: payload
const (
	overflowHeaderSize = 6
	overflowCapacity   = PageSize - overflowHeaderSize
)

// HeapFile is an unordered collection of records stored in a chain of
// slotted pages. Records larger than MaxInlineRecord spill into
// overflow-page chains, which keeps the paper's 10,000-byte ByteArray
// tuples storable on 8 KiB pages.
type HeapFile struct {
	pool  *BufferPool
	disk  *DiskManager
	first PageID
	last  PageID // cached hint for fast appends; revalidated on use
}

// CreateHeapFile allocates a new, empty heap file and returns it. The
// returned FirstPage must be recorded (e.g. in the catalog) to reopen
// the file later.
func CreateHeapFile(disk *DiskManager, pool *BufferPool) (*HeapFile, error) {
	pp, err := pool.Allocate()
	if err != nil {
		return nil, fmt.Errorf("storage: create heap file: %w", err)
	}
	first := pp.ID()
	pp.Unpin(true)
	return &HeapFile{pool: pool, disk: disk, first: first, last: first}, nil
}

// OpenHeapFile reopens a heap file by its first page.
func OpenHeapFile(disk *DiskManager, pool *BufferPool, first PageID) *HeapFile {
	return &HeapFile{pool: pool, disk: disk, first: first, last: first}
}

// FirstPage returns the head of the page chain (the file's identity).
func (h *HeapFile) FirstPage() PageID { return h.first }

// Insert stores rec and returns its RID. rec is copied.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > MaxInlineRecord {
		return h.insertLarge(rec)
	}
	pp, err := h.lastPageWithRoom(len(rec) + slotSize)
	if err != nil {
		return RID{}, err
	}
	slot, err := pp.Page().Insert(rec)
	if err != nil {
		pp.Unpin(false)
		return RID{}, err
	}
	rid := RID{Page: pp.ID(), Slot: uint16(slot)}
	pp.Unpin(true)
	return rid, nil
}

func (h *HeapFile) insertLarge(rec []byte) (RID, error) {
	// Write the overflow chain first, then the stub.
	var first, prev PageID = InvalidPageID, InvalidPageID
	for off := 0; off < len(rec); {
		pp, err := h.pool.Allocate()
		if err != nil {
			return RID{}, fmt.Errorf("storage: allocate overflow page: %w", err)
		}
		buf := pp.Data()
		binary.LittleEndian.PutUint32(buf[0:], uint32(InvalidPageID))
		n := len(rec) - off
		if n > overflowCapacity {
			n = overflowCapacity
		}
		binary.LittleEndian.PutUint16(buf[4:], uint16(n))
		copy(buf[overflowHeaderSize:], rec[off:off+n])
		id := pp.ID()
		pp.Unpin(true)
		if first == InvalidPageID {
			first = id
		} else {
			// Link the previous overflow page to this one.
			prevPP, err := h.pool.Fetch(prev)
			if err != nil {
				return RID{}, err
			}
			binary.LittleEndian.PutUint32(prevPP.Data()[0:], uint32(id))
			prevPP.Unpin(true)
		}
		prev = id
		off += n
	}
	pp, err := h.lastPageWithRoom(largeStubSize + slotSize)
	if err != nil {
		return RID{}, err
	}
	slot, err := pp.Page().insertLargeStub(first, uint32(len(rec)))
	if err != nil {
		pp.Unpin(false)
		return RID{}, err
	}
	rid := RID{Page: pp.ID(), Slot: uint16(slot)}
	pp.Unpin(true)
	return rid, nil
}

// lastPageWithRoom returns a pinned page with at least need bytes free,
// appending a new page to the chain if necessary.
func (h *HeapFile) lastPageWithRoom(need int) (*PinnedPage, error) {
	// Start from the cached last-page hint and walk forward.
	id := h.last
	if id == InvalidPageID {
		id = h.first
	}
	for {
		pp, err := h.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		pg := pp.Page()
		next := pg.Next()
		if next == InvalidPageID {
			h.last = id
			if pg.FreeSpace() >= need {
				return pp, nil
			}
			// Chain a new page.
			newPP, err := h.pool.Allocate()
			if err != nil {
				pp.Unpin(false)
				return nil, err
			}
			pg.SetNext(newPP.ID())
			pp.Unpin(true)
			h.last = newPP.ID()
			return newPP, nil
		}
		pp.Unpin(false)
		id = next
	}
}

// Get returns a copy of the record at rid, or ok=false if the record
// was deleted or never existed.
func (h *HeapFile) Get(rid RID) ([]byte, bool, error) {
	pp, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer pp.Unpin(false)
	rec, isLarge, first, totalLen, ok := pp.Page().Record(int(rid.Slot))
	if !ok {
		return nil, false, nil
	}
	if !isLarge {
		out := make([]byte, len(rec))
		copy(out, rec)
		return out, true, nil
	}
	out, err := h.readOverflow(first, totalLen)
	if err != nil {
		return nil, false, err
	}
	return out, true, nil
}

func (h *HeapFile) readOverflow(first PageID, totalLen uint32) ([]byte, error) {
	out := make([]byte, 0, totalLen)
	id := first
	for id != InvalidPageID {
		pp, err := h.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		buf := pp.Data()
		next := PageID(binary.LittleEndian.Uint32(buf[0:]))
		used := int(binary.LittleEndian.Uint16(buf[4:]))
		if used > overflowCapacity {
			pp.Unpin(false)
			return nil, fmt.Errorf("storage: corrupt overflow page %d (used=%d)", id, used)
		}
		out = append(out, buf[overflowHeaderSize:overflowHeaderSize+used]...)
		pp.Unpin(false)
		id = next
	}
	if uint32(len(out)) != totalLen {
		return nil, fmt.Errorf("storage: overflow chain yielded %d bytes, want %d", len(out), totalLen)
	}
	return out, nil
}

// Delete removes the record at rid, freeing any overflow chain. It
// reports whether a live record was deleted.
func (h *HeapFile) Delete(rid RID) (bool, error) {
	pp, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return false, err
	}
	wasLarge, first, ok := pp.Page().Delete(int(rid.Slot))
	pp.Unpin(ok)
	if !ok {
		return false, nil
	}
	if wasLarge {
		if err := h.freeOverflow(first); err != nil {
			return true, err
		}
	}
	return true, nil
}

func (h *HeapFile) freeOverflow(first PageID) error {
	id := first
	for id != InvalidPageID {
		pp, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint32(pp.Data()[0:]))
		pp.Unpin(false)
		h.pool.Drop(id)
		if err := h.disk.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// Destroy frees every page of the heap file, including overflow chains.
// The heap file must not be used afterwards.
func (h *HeapFile) Destroy() error {
	id := h.first
	for id != InvalidPageID {
		pp, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		pg := pp.Page()
		next := pg.Next()
		// Free overflow chains of live large records on this page.
		for slot := 0; slot < pg.NumSlots(); slot++ {
			_, isLarge, first, _, ok := pg.Record(slot)
			if ok && isLarge {
				if err := h.freeOverflow(first); err != nil {
					pp.Unpin(false)
					return err
				}
			}
		}
		pp.Unpin(false)
		h.pool.Drop(id)
		if err := h.disk.Free(id); err != nil {
			return err
		}
		id = next
	}
	h.first = InvalidPageID
	h.last = InvalidPageID
	return nil
}

// HeapStats summarizes a heap file's size for planner estimates.
type HeapStats struct {
	// Pages is the number of primary (non-overflow) pages in the chain.
	Pages int
	// Records is the number of live records.
	Records int64
}

// Stats walks the page chain and counts pages and live records. It is
// O(pages) and intended for EXPLAIN-time estimation, not per-row use.
func (h *HeapFile) Stats() (HeapStats, error) {
	var st HeapStats
	id := h.first
	for id != InvalidPageID {
		pp, err := h.pool.Fetch(id)
		if err != nil {
			return st, err
		}
		pg := pp.Page()
		st.Pages++
		for slot := 0; slot < pg.NumSlots(); slot++ {
			if _, _, _, _, ok := pg.Record(slot); ok {
				st.Records++
			}
		}
		next := pg.Next()
		pp.Unpin(false)
		id = next
	}
	return st, nil
}

// Scan returns an iterator over all live records in the file.
func (h *HeapFile) Scan() *Scanner {
	return &Scanner{hf: h, page: h.first, slot: 0}
}

// Scanner iterates a heap file page by page, slot by slot.
type Scanner struct {
	hf   *HeapFile
	page PageID
	slot int
	err  error

	rid RID
	rec []byte
}

// Next advances to the next live record. It returns false at the end
// of the file or on error (check Err).
func (s *Scanner) Next() bool {
	for s.page != InvalidPageID {
		pp, err := s.hf.pool.Fetch(s.page)
		if err != nil {
			s.err = err
			return false
		}
		pg := pp.Page()
		for s.slot < pg.NumSlots() {
			rec, isLarge, first, totalLen, ok := pg.Record(s.slot)
			s.slot++
			if !ok {
				continue
			}
			s.rid = RID{Page: s.page, Slot: uint16(s.slot - 1)}
			if isLarge {
				pp.Unpin(false)
				out, err := s.hf.readOverflow(first, totalLen)
				if err != nil {
					s.err = err
					return false
				}
				s.rec = out
				return true
			}
			out := make([]byte, len(rec))
			copy(out, rec)
			s.rec = out
			pp.Unpin(false)
			return true
		}
		next := pg.Next()
		pp.Unpin(false)
		s.page = next
		s.slot = 0
	}
	return false
}

// Record returns the current record (a copy owned by the caller).
func (s *Scanner) Record() []byte { return s.rec }

// RID returns the current record's RID.
func (s *Scanner) RID() RID { return s.rid }

// Err returns the first error encountered during the scan, if any.
func (s *Scanner) Err() error { return s.err }
