package storage

import (
	"container/list"
	"fmt"
	"sync"

	"predator/internal/obs"
)

// Process-wide buffer-pool metrics (all pools report into them; the
// per-pool Stats() snapshot remains for per-engine views).
var (
	obsPoolHits      = obs.Default.Counter("predator_storage_bufferpool_hits_total")
	obsPoolMisses    = obs.Default.Counter("predator_storage_bufferpool_misses_total")
	obsPoolEvictions = obs.Default.Counter("predator_storage_bufferpool_evictions_total")
)

// BufferPool caches pages in memory with LRU replacement and pin
// counting. All page access in the engine goes through the pool; the
// Fig. 4 calibration measures exactly this path.
//
// The pool enforces the WAL-before-data ordering for pages it caches:
// a dirty page's after-image is appended to the log when its last pin
// is released (and again before eviction or FlushAll if it was
// re-dirtied), so no dirty page can reach the data file ahead of its
// log record, and a statement-boundary Commit captures every page the
// statement touched even if it is still only in memory.
type BufferPool struct {
	mu       sync.Mutex
	disk     *DiskManager
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // unpinned frames, front = least recently used

	stats BufferStats
}

// BufferStats reports cache behaviour.
type BufferStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type frame struct {
	id      PageID
	buf     [PageSize]byte
	pins    int
	dirty   bool
	logged  bool          // dirty contents already have a WAL image
	dropped bool          // detached from the pool; discard at unpin
	lruEle  *list.Element // non-nil iff unpinned and resident
}

// PinnedPage is a handle to a pinned buffer frame. Callers must call
// Unpin exactly once; Data is invalid afterwards.
type PinnedPage struct {
	pool  *BufferPool
	frame *frame
}

// ID returns the pinned page's ID.
func (pp *PinnedPage) ID() PageID { return pp.frame.id }

// Data returns the page buffer. Mutating it requires marking the page
// dirty at Unpin time.
func (pp *PinnedPage) Data() []byte { return pp.frame.buf[:] }

// Page returns a slotted-page view of the buffer.
func (pp *PinnedPage) Page() *Page { return AsPage(pp.frame.buf[:]) }

// Unpin releases the pin. If dirty is true the page will be written
// back before eviction (or at FlushAll).
func (pp *PinnedPage) Unpin(dirty bool) {
	pp.pool.unpin(pp.frame, dirty)
	pp.frame = nil
}

// NewBufferPool creates a pool caching up to capacity pages.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lru:      list.New(),
	}
}

// Fetch pins the page with the given ID, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*PinnedPage, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		obsPoolHits.Inc()
		bp.pinLocked(f)
		return &PinnedPage{pool: bp, frame: f}, nil
	}
	bp.stats.Misses++
	obsPoolMisses.Inc()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.Read(id, f.buf[:]); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	return &PinnedPage{pool: bp, frame: f}, nil
}

// Allocate creates a brand-new page (formatted as an empty slotted
// page) and returns it pinned.
func (bp *BufferPool) Allocate() (*PinnedPage, error) {
	id, err := bp.disk.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.allocFrameLocked(id)
	if err != nil {
		return nil, err
	}
	AsPage(f.buf[:]).Init()
	f.dirty = true
	return &PinnedPage{pool: bp, frame: f}, nil
}

// allocFrameLocked finds a frame for id, evicting if needed, and pins
// it. Any stale resident frame for the same ID (a freed page whose ID
// the disk manager reused) is detached first so the old cached image
// cannot shadow the new page.
func (bp *BufferPool) allocFrameLocked(id PageID) (*frame, error) {
	if old, ok := bp.frames[id]; ok {
		bp.detachLocked(old)
	}
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &frame{id: id, pins: 1}
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) evictLocked() error {
	ele := bp.lru.Front()
	if ele == nil {
		return fmt.Errorf("storage: buffer pool exhausted (%d pages, all pinned)", bp.capacity)
	}
	victim := ele.Value.(*frame)
	if victim.dirty {
		if err := bp.logImageLocked(victim); err != nil {
			return err
		}
		if err := bp.disk.Write(victim.id, victim.buf[:]); err != nil {
			return err
		}
	}
	bp.detachLocked(victim)
	bp.stats.Evictions++
	obsPoolEvictions.Inc()
	return nil
}

// detachLocked removes a frame from the pool's index and LRU list and
// marks it dropped, so outstanding pins discard it at unpin instead of
// returning it to the LRU.
func (bp *BufferPool) detachLocked(f *frame) {
	if f.lruEle != nil {
		bp.lru.Remove(f.lruEle)
		f.lruEle = nil
	}
	delete(bp.frames, f.id)
	f.dropped = true
}

// logImageLocked appends the frame's after-image to the WAL if its
// dirty contents are not logged yet.
func (bp *BufferPool) logImageLocked(f *frame) error {
	if f.logged {
		return nil
	}
	if err := bp.disk.LogPageImage(f.id, f.buf[:]); err != nil {
		return err
	}
	f.logged = true
	return nil
}

func (bp *BufferPool) pinLocked(f *frame) {
	if f.lruEle != nil {
		bp.lru.Remove(f.lruEle)
		f.lruEle = nil
	}
	f.pins++
}

func (bp *BufferPool) unpin(f *frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.id))
	}
	if dirty {
		f.dirty = true
		f.logged = false
	}
	f.pins--
	if f.dropped {
		return
	}
	if f.pins == 0 {
		if f.dirty && !f.logged {
			// Last pin released: the page's final contents for this
			// statement are known, so get its redo image into the log
			// before the statement can be acknowledged.
			if err := bp.logImageLocked(f); err != nil {
				// Leave the frame unlogged; eviction/FlushAll retries
				// and surfaces the error on the write path.
				f.logged = false
			}
		}
		f.lruEle = bp.lru.PushBack(f)
	}
}

// Drop detaches a page from the pool without writing it back, even if
// it is still pinned (outstanding pins discard the frame at unpin).
// Used when the page has been freed on disk, where keeping the stale
// image cached would corrupt a future reuse of the ID.
func (bp *BufferPool) Drop(id PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[id]; ok {
		bp.detachLocked(f)
	}
}

// FlushAll writes every dirty resident page back to disk, logging
// still-unlogged images first.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			if err := bp.logImageLocked(f); err != nil {
				return err
			}
			if err := bp.disk.Write(f.id, f.buf[:]); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// DirtyImages snapshots the current contents of every dirty resident
// page. The engine's degraded-mode probe feeds these to
// DiskManager.RebuildWAL: a rebuilt log must contain an after-image of
// every page whose newest contents exist only in memory or in the
// poisoned log. Copies are returned (the pool lock is not held across
// the rebuild).
func (bp *BufferPool) DirtyImages() map[PageID][]byte {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	images := make(map[PageID][]byte)
	for _, f := range bp.frames {
		if f.dirty {
			img := make([]byte, PageSize)
			copy(img, f.buf[:])
			images[f.id] = img
		}
	}
	return images
}

// MarkAllLogged records that every dirty page's current image is in
// the (rebuilt) log, so unpin/eviction will not re-append images that
// RebuildWAL already persisted. Call only after a successful rebuild
// that included DirtyImages' snapshot, with no writers in between (the
// engine holds its checkpoint lock exclusively across both).
func (bp *BufferPool) MarkAllLogged() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.frames {
		if f.dirty {
			f.logged = true
		}
	}
}

// Stats returns a snapshot of hit/miss/eviction counters.
func (bp *BufferPool) Stats() BufferStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}
