package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// openDurable opens a disk manager with the WAL on (commit policy).
func openDurable(t *testing.T, path string) *DiskManager {
	t.Helper()
	d, err := OpenDiskOptions(path, DiskOptions{Durability: DurabilityCommit})
	if err != nil {
		t.Fatalf("OpenDiskOptions: %v", err)
	}
	return d
}

// crashDisk simulates a process death: the OS file handles close but
// nothing is flushed, checkpointed or truncated.
func crashDisk(d *DiskManager) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	if d.wal != nil {
		d.wal.w.Flush() // records the process wrote (the "OS survived" model)
		d.wal.f.Close()
	}
	d.f.Close()
}

func TestWALRecoveryReplaysLoggedPages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := bytes.Repeat([]byte{0xAB}, PageSize)
	if err := d.LogPageImage(id, want); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Crash before the page itself ever reaches the data file.
	crashDisk(d)

	d2 := openDurable(t, path)
	defer d2.Close()
	rec := d2.Recovered()
	if !rec.Ran || rec.Records == 0 {
		t.Fatalf("recovery did not run: %+v", rec)
	}
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("page contents not restored from WAL")
	}
	if bad, err := d2.VerifyChecksums(); err != nil || len(bad) != 0 {
		t.Fatalf("VerifyChecksums after recovery: bad=%v err=%v", bad, err)
	}
}

func TestWALRecoveryDiscardsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := bytes.Repeat([]byte{0x11}, PageSize)
	if err := d.LogPageImage(id, want); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	crashDisk(d)

	// Tear the log: append half a record's worth of garbage.
	walFile := WALPath(path)
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	f.Write(bytes.Repeat([]byte{0xFF}, walHeaderSize+100))
	f.Close()

	d2 := openDurable(t, path)
	defer d2.Close()
	rec := d2.Recovered()
	if !rec.Ran || !rec.TornTail {
		t.Fatalf("expected recovery with torn tail, got %+v", rec)
	}
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read after recovery: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("valid prefix not replayed despite torn tail")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.Write(id, bytes.Repeat([]byte{0x5A}, PageSize)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d.Close()

	// Flip one payload byte on disk.
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.WriteAt([]byte{0x00}, int64(id)*DiskFrameSize+frameHeaderSize+100); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	buf := make([]byte, PageSize)
	if err := d2.Read(id, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Read of corrupted page: got %v, want ErrChecksum", err)
	}
	bad, err := d2.VerifyChecksums()
	if err != nil {
		t.Fatalf("VerifyChecksums: %v", err)
	}
	if len(bad) != 1 || bad[0] != id {
		t.Fatalf("VerifyChecksums: got %v, want [%d]", bad, id)
	}
}

func TestReadPastEndReturnsShortRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Truncate the file under the manager: the page is now torn short.
	if err := os.Truncate(path, int64(id)*DiskFrameSize+DiskFrameSize/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	buf := make([]byte, PageSize)
	if err := d.Read(id, buf); !errors.Is(err, ErrShortRead) {
		t.Fatalf("Read past EOF: got %v, want ErrShortRead", err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	d := openDurable(t, path)
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.LogPageImage(id, make([]byte, PageSize)); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if d.WALSize() == 0 {
		t.Fatalf("WAL empty after logged allocation")
	}
	if err := d.Write(id, make([]byte, PageSize)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := d.WALSize(); got != 0 {
		t.Fatalf("WAL size after checkpoint = %d, want 0", got)
	}
	if info, err := os.Stat(WALPath(path)); err != nil || info.Size() != 0 {
		t.Fatalf("wal file after checkpoint: size=%v err=%v", info, err)
	}
}

func TestDurabilityNoneHasNoWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nowal.db")
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.Write(id, make([]byte, PageSize)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit (should be a no-op): %v", err)
	}
	if _, err := os.Stat(WALPath(path)); !os.IsNotExist(err) {
		t.Fatalf("wal file exists under DurabilityNone: %v", err)
	}
	if ws := d.WALStats(); ws != (WALStats{}) {
		t.Fatalf("WALStats under DurabilityNone = %+v", ws)
	}
}

func TestRecoveryReplaysMetaAndFreeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.db")
	d := openDurable(t, path)
	id1, _ := d.Allocate()
	id2, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.Free(id1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	wantPages := d.NumPages()
	crashDisk(d)

	// Wipe the data file's meta page so only WAL replay can restore it.
	// (Zero payload with a valid-looking stale CRC of an older state is
	// the realistic torn case; full garbage exercises the same path.)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f.WriteAt(make([]byte, DiskFrameSize), 0)
	f.Close()

	d2 := openDurable(t, path)
	defer d2.Close()
	if got := d2.NumPages(); got != wantPages {
		t.Fatalf("NumPages after recovery = %d, want %d", got, wantPages)
	}
	// The freed page must come back first.
	got, err := d2.Allocate()
	if err != nil {
		t.Fatalf("Allocate after recovery: %v", err)
	}
	if got != id1 {
		t.Fatalf("free list not recovered: allocated %d, want %d", got, id1)
	}
	_ = id2
}

func TestStaleWALNextToFreshFileIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.db")
	// A WAL with no database: the data file was deleted or never
	// created; replaying would fabricate pages.
	if err := os.WriteFile(WALPath(path), bytes.Repeat([]byte{0x77}, 256), 0o644); err != nil {
		t.Fatalf("write stale wal: %v", err)
	}
	d := openDurable(t, path)
	defer d.Close()
	if rec := d.Recovered(); rec.Ran {
		t.Fatalf("recovery ran against a fresh file: %+v", rec)
	}
	if d.NumPages() != 1 {
		t.Fatalf("fresh file has %d pages, want 1", d.NumPages())
	}
}

func TestParseDurability(t *testing.T) {
	cases := []struct {
		in   string
		want Durability
		err  bool
	}{
		{"", DurabilityCommit, false},
		{"commit", DurabilityCommit, false},
		{"none", DurabilityNone, false},
		{"always", DurabilityAlways, false},
		{"fsync", 0, true},
	}
	for _, c := range cases {
		got, err := ParseDurability(c.in)
		if c.err != (err != nil) || (!c.err && got != c.want) {
			t.Errorf("ParseDurability(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestDurabilityAlwaysFsyncsPerAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "always.db")
	d, err := OpenDiskOptions(path, DiskOptions{Durability: DurabilityAlways})
	if err != nil {
		t.Fatalf("OpenDiskOptions: %v", err)
	}
	defer d.Close()
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	before := d.WALStats().Fsyncs
	if before == 0 {
		t.Fatalf("no fsyncs recorded during allocation under always")
	}
	if err := d.LogPageImage(id, make([]byte, PageSize)); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if got := d.WALStats().Fsyncs; got != before+1 {
		t.Fatalf("fsyncs after LogPageImage = %d, want %d", got, before+1)
	}
}

// TestRecoveryHealsExtensionHole covers a crash between extending the
// file (meta says N pages) and durably writing the new page: recovery
// must leave a readable, checksummed zero page rather than a torn one.
func TestRecoveryHealsExtensionHole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hole.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	crashDisk(d)

	// Lose the extension write: truncate the file to just the meta page
	// (the WAL still records the allocation and meta update).
	if err := os.Truncate(path, DiskFrameSize); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	d2 := openDurable(t, path)
	defer d2.Close()
	buf := make([]byte, PageSize)
	if err := d2.Read(id, buf); err != nil {
		t.Fatalf("Read of healed page: %v", err)
	}
	if bad, err := d2.VerifyChecksums(); err != nil || len(bad) != 0 {
		t.Fatalf("VerifyChecksums: bad=%v err=%v", bad, err)
	}
}

// TestZeroPageReadsAsEmptyChainEnd: an allocated-but-never-written
// page (the crash artifact recovery heals to a zeroed frame) must scan
// as an empty end-of-chain page, not dereference page 0.
func TestZeroPageReadsAsEmptyChainEnd(t *testing.T) {
	p := AsPage(make([]byte, PageSize))
	if got := p.Next(); got != InvalidPageID {
		t.Fatalf("zero page Next() = %d, want InvalidPageID", got)
	}
	if p.NumSlots() != 0 {
		t.Fatalf("zero page has %d slots", p.NumSlots())
	}
	if p.CanFit(1) {
		t.Fatalf("zero page claims free space (freeEnd is 0)")
	}
}

// TestZeroLengthWALOpensCleanly: a crash immediately after WAL
// creation leaves a zero-byte log; open must succeed without claiming
// a recovery ran.
func TestZeroLengthWALOpensCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zero.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	crashDisk(d)
	if info, err := os.Stat(WALPath(path)); err != nil || info.Size() != 0 {
		t.Fatalf("setup: WAL not empty after checkpoint: %v %v", info, err)
	}

	d2 := openDurable(t, path)
	defer d2.Close()
	if rec := d2.Recovered(); rec.Ran {
		t.Fatalf("recovery ran on a zero-length WAL: %+v", rec)
	}
	buf := make([]byte, PageSize)
	if err := d2.Read(id, buf); err != nil {
		t.Fatalf("Read after zero-length-WAL open: %v", err)
	}
}

// TestWALTruncatedMidHeader: the crash tore the log inside a record
// header (fewer than walHeaderSize trailing bytes). The valid prefix
// replays; the fragment is discarded as a torn tail.
func TestWALTruncatedMidHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "midhdr.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := bytes.Repeat([]byte{0x3C}, PageSize)
	if err := d.LogPageImage(id, want); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	crashDisk(d)

	// Append 4 bytes: less than a header, unparseable.
	f, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	f.Write([]byte{walPageImage, 0xFF, 0xFF, 0xFF})
	f.Close()

	d2 := openDurable(t, path)
	defer d2.Close()
	rec := d2.Recovered()
	if !rec.Ran || !rec.TornTail {
		t.Fatalf("expected torn-tail recovery, got %+v", rec)
	}
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("valid prefix not replayed after mid-header truncation")
	}
}

// TestWALTornFinalPageImage: the final page-image record is torn
// mid-payload (a complete header promising more bytes than exist).
// Recovery keeps the earlier committed image, not the torn overwrite.
func TestWALTornFinalPageImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornimg.db")
	d := openDurable(t, path)
	id, err := d.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	want := bytes.Repeat([]byte{0x42}, PageSize)
	if err := d.LogPageImage(id, want); err != nil {
		t.Fatalf("LogPageImage: %v", err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	crashDisk(d)

	// Hand-craft a torn record: full header for a page image of this
	// page, but only half the payload made it to disk.
	torn := encodeWALRecord(walPageImage, id, bytes.Repeat([]byte{0x99}, PageSize))
	f, err := os.OpenFile(WALPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	f.Write(torn[:len(torn)/2])
	f.Close()

	d2 := openDurable(t, path)
	defer d2.Close()
	rec := d2.Recovered()
	if !rec.Ran || !rec.TornTail {
		t.Fatalf("expected torn-tail recovery, got %+v", rec)
	}
	got := make([]byte, PageSize)
	if err := d2.Read(id, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("torn final image leaked into the page (or committed image lost)")
	}
}

func TestFrameStampVerifyRoundTrip(t *testing.T) {
	var frame [DiskFrameSize]byte
	payload := bytes.Repeat([]byte{0xC3}, PageSize)
	copy(frame[frameHeaderSize:], payload)
	stampFrame(frame[:], 7)
	if !verifyFrame(frame[:]) {
		t.Fatalf("freshly stamped frame does not verify")
	}
	if got := binary.LittleEndian.Uint64(frame[8:]); got != 7 {
		t.Fatalf("LSN = %d, want 7", got)
	}
	frame[frameHeaderSize] ^= 1
	if verifyFrame(frame[:]) {
		t.Fatalf("corrupted frame verifies")
	}
}
