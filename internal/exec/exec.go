// Package exec implements the Volcano-style iterator executor: each
// operator exposes Open/Next/Close and pulls rows from its children.
// UDFs are applied per tuple inside Filter/Project expressions, which
// is exactly the execution shape the paper's experiments time.
package exec

import (
	"fmt"
	"sort"

	"predator/internal/expr"
	"predator/internal/obs"
	"predator/internal/storage"
	"predator/internal/types"
)

// Operator is one node of a physical query plan.
type Operator interface {
	// Schema describes the rows this operator produces.
	Schema() *types.Schema
	// Open prepares the operator for iteration.
	Open(ec *expr.Ctx) error
	// Next returns the next row, or nil at end of stream.
	Next() (types.Row, error)
	// Close releases resources. Safe to call after a failed Open.
	Close() error
	// Explain renders this node (without children) for EXPLAIN.
	Explain() string
	// Children returns the operator's inputs.
	Children() []Operator
}

// SeqScan reads every live record of a heap file.
type SeqScan struct {
	estNote
	Table   string
	Heap    *storage.HeapFile
	Sch     *types.Schema
	scanner *storage.Scanner
	rows    int64
}

// Schema implements Operator.
func (s *SeqScan) Schema() *types.Schema { return s.Sch }

// Open implements Operator.
func (s *SeqScan) Open(*expr.Ctx) error {
	s.scanner = s.Heap.Scan()
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (types.Row, error) {
	if s.scanner == nil {
		return nil, fmt.Errorf("exec: scan of %s not opened", s.Table)
	}
	if !s.scanner.Next() {
		if err := s.scanner.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	row, err := types.DecodeRow(s.scanner.Record(), s.Sch)
	if err != nil {
		return nil, fmt.Errorf("exec: decode record %s of %s: %w", s.scanner.RID(), s.Table, err)
	}
	s.rows++
	return row, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error {
	s.scanner = nil
	rowsSeqScan.Add(s.rows)
	s.rows = 0
	return nil
}

// Explain implements Operator.
func (s *SeqScan) Explain() string { return fmt.Sprintf("SeqScan(%s)", s.Table) + s.estSuffix() }

// Children implements Operator.
func (s *SeqScan) Children() []Operator { return nil }

// Filter passes through rows whose predicate evaluates to TRUE
// (NULL and FALSE are both rejected, per SQL). When the predicate is a
// batchable UDF call and the context enables batching, rows are pulled
// in windows and the predicate evaluates with amortized UDF crossings
// (see batch.go); otherwise the legacy per-tuple loop runs unchanged.
type Filter struct {
	estNote
	Input Operator
	Pred  expr.Bound
	ec    *expr.Ctx
	bs    *batchState
	rows  int64
}

// Schema implements Operator.
func (f *Filter) Schema() *types.Schema { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open(ec *expr.Ctx) error {
	f.ec = ec
	f.bs = batchFilterState(ec, f.Input, f.Pred)
	return f.Input.Open(ec)
}

// Next implements Operator.
func (f *Filter) Next() (types.Row, error) {
	if f.bs != nil {
		return f.nextBatched()
	}
	for {
		// Poll the statement deadline here so a selective filter over a
		// large input cancels promptly even when it emits no rows.
		if err := f.ec.Check(); err != nil {
			return nil, err
		}
		row, err := f.Input.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(f.ec, row)
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.Bool {
			f.rows++
			return row, nil
		}
	}
}

func (f *Filter) nextBatched() (types.Row, error) {
	for {
		w, i, err := f.bs.next()
		if err != nil || w == nil {
			return nil, err
		}
		if w.res[i].Err != nil {
			return nil, w.res[i].Err
		}
		if v := w.res[i].Value; !v.IsNull() && v.Bool {
			f.rows++
			return w.rows[i], nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error {
	if f.bs != nil {
		f.bs.drain()
	}
	rowsFilter.Add(f.rows)
	f.rows = 0
	return f.Input.Close()
}

// Explain implements Operator.
func (f *Filter) Explain() string {
	return fmt.Sprintf("Filter(%s) [cost=%.1f]", f.Pred, f.Pred.Cost()) + f.estSuffix() + f.bs.suffix()
}

// Children implements Operator.
func (f *Filter) Children() []Operator { return []Operator{f.Input} }

// Project computes a list of expressions per input row. When at least
// one expression is a batchable UDF call and the context enables
// batching, input rows are pulled in windows and those expressions
// evaluate with amortized UDF crossings (see batch.go).
type Project struct {
	estNote
	Input Operator
	Exprs []expr.Bound
	Names []string
	ec    *expr.Ctx
	bs    *batchState
	sch   *types.Schema
	rows  int64
}

// Schema implements Operator.
func (p *Project) Schema() *types.Schema {
	if p.sch == nil {
		cols := make([]types.Column, len(p.Exprs))
		for i, e := range p.Exprs {
			name := p.Names[i]
			if name == "" {
				name = e.String()
			}
			cols[i] = types.Column{Name: name, Kind: e.Kind()}
		}
		p.sch = &types.Schema{Columns: cols}
	}
	return p.sch
}

// Open implements Operator.
func (p *Project) Open(ec *expr.Ctx) error {
	p.ec = ec
	p.bs = batchProjectState(ec, p.Input, p.Exprs)
	return p.Input.Open(ec)
}

// Next implements Operator.
func (p *Project) Next() (types.Row, error) {
	if p.bs != nil {
		w, i, err := p.bs.next()
		if err != nil || w == nil {
			return nil, err
		}
		p.rows++
		return w.out[i], nil
	}
	row, err := p.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(p.ec, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	p.rows++
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error {
	if p.bs != nil {
		p.bs.drain()
	}
	rowsProject.Add(p.rows)
	p.rows = 0
	return p.Input.Close()
}

// Explain implements Operator.
func (p *Project) Explain() string {
	return fmt.Sprintf("Project(%d exprs)", len(p.Exprs)) + p.estSuffix() + p.bs.suffix()
}

// Children implements Operator.
func (p *Project) Children() []Operator { return []Operator{p.Input} }

// NestedLoopJoin joins two inputs with an optional ON predicate
// (nil = cross join). The inner input is materialized once.
type NestedLoopJoin struct {
	estNote
	Left, Right Operator
	On          expr.Bound // evaluated over concatenated rows; may be nil
	ec          *expr.Ctx
	sch         *types.Schema
	inner       []types.Row
	cur         types.Row
	idx         int
	rows        int64
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() *types.Schema {
	if j.sch == nil {
		j.sch = j.Left.Schema().Concat(j.Right.Schema())
	}
	return j.sch
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ec *expr.Ctx) error {
	j.ec = ec
	if err := j.Left.Open(ec); err != nil {
		return err
	}
	if err := j.Right.Open(ec); err != nil {
		return err
	}
	// Materialize the inner (right) side.
	j.inner = j.inner[:0]
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.inner = append(j.inner, row.Clone())
	}
	j.cur = nil
	j.idx = 0
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (types.Row, error) {
	for {
		if j.cur == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.cur = row
			j.idx = 0
		}
		for j.idx < len(j.inner) {
			right := j.inner[j.idx]
			j.idx++
			combined := make(types.Row, 0, len(j.cur)+len(right))
			combined = append(combined, j.cur...)
			combined = append(combined, right...)
			if j.On != nil {
				v, err := j.On.Eval(j.ec, combined)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !v.Bool {
					continue
				}
			}
			j.rows++
			return combined, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	rowsJoin.Add(j.rows)
	j.rows = 0
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	j.inner = nil
	if err1 != nil {
		return err1
	}
	return err2
}

// Explain implements Operator.
func (j *NestedLoopJoin) Explain() string {
	if j.On == nil {
		return "NestedLoopJoin(cross)" + j.estSuffix()
	}
	return fmt.Sprintf("NestedLoopJoin(on %s)", j.On) + j.estSuffix()
}

// Children implements Operator.
func (j *NestedLoopJoin) Children() []Operator { return []Operator{j.Left, j.Right} }

// Sort materializes and orders its input.
type Sort struct {
	estNote
	Input Operator
	Keys  []SortKey
	rows  []types.Row
	pos   int
	out   int64
}

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr expr.Bound
	Desc bool
}

// Schema implements Operator.
func (s *Sort) Schema() *types.Schema { return s.Input.Schema() }

// Open implements Operator.
func (s *Sort) Open(ec *expr.Ctx) error {
	if err := s.Input.Open(ec); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var all []keyed
	for {
		row, err := s.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keys := make(types.Row, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k.Expr.Eval(ec, row)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		all = append(all, keyed{row: row.Clone(), keys: keys})
	}
	var sortErr error
	sort.SliceStable(all, func(a, b int) bool {
		for i, k := range s.Keys {
			c, err := all[a].keys[i].Compare(all[b].keys[i])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for _, k := range all {
		s.rows = append(s.rows, k.row)
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	s.out++
	return row, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	rowsSort.Add(s.out)
	s.out = 0
	return s.Input.Close()
}

// Explain implements Operator.
func (s *Sort) Explain() string { return fmt.Sprintf("Sort(%d keys)", len(s.Keys)) + s.estSuffix() }

// Children implements Operator.
func (s *Sort) Children() []Operator { return []Operator{s.Input} }

// Limit stops after N rows.
type Limit struct {
	estNote
	Input Operator
	N     int64
	seen  int64
}

// Schema implements Operator.
func (l *Limit) Schema() *types.Schema { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open(ec *expr.Ctx) error {
	l.seen = 0
	return l.Input.Open(ec)
}

// Next implements Operator.
func (l *Limit) Next() (types.Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error {
	rowsLimit.Add(l.seen)
	l.seen = 0
	return l.Input.Close()
}

// Explain implements Operator.
func (l *Limit) Explain() string { return fmt.Sprintf("Limit(%d)", l.N) + l.estSuffix() }

// Children implements Operator.
func (l *Limit) Children() []Operator { return []Operator{l.Input} }

// Values produces a fixed list of rows (INSERT sources, tests).
type Values struct {
	estNote
	Sch  *types.Schema
	Rows []types.Row
	pos  int
}

// Schema implements Operator.
func (v *Values) Schema() *types.Schema { return v.Sch }

// Open implements Operator.
func (v *Values) Open(*expr.Ctx) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	row := v.Rows[v.pos]
	v.pos++
	return row, nil
}

// Close implements Operator.
func (v *Values) Close() error {
	rowsValues.Add(int64(v.pos))
	v.pos = 0
	return nil
}

// Explain implements Operator.
func (v *Values) Explain() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) + v.estSuffix() }

// Children implements Operator.
func (v *Values) Children() []Operator { return nil }

// Run drains an operator into a materialized result.
func Run(op Operator, ec *expr.Ctx) ([]types.Row, error) {
	if err := op.Open(ec); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var flight *obs.Execution
	if ec != nil {
		flight = ec.Exec
	}
	var out []types.Row
	for {
		if err := ec.Check(); err != nil {
			return nil, err
		}
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		if err := ec.Charge(int64(rowFootprint(row))); err != nil {
			return nil, err
		}
		out = append(out, row.Clone())
		flight.AddRows(1)
	}
}

// ExplainTree renders a plan tree with indentation.
func ExplainTree(op Operator) string {
	var b []byte
	var walk func(o Operator, depth int)
	walk = func(o Operator, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, o.Explain()...)
		b = append(b, '\n')
		for _, c := range o.Children() {
			walk(c, depth+1)
		}
	}
	walk(op, 0)
	return string(b)
}
