package exec

import (
	"fmt"
	"strings"

	"predator/internal/expr"
	"predator/internal/types"
)

// Aggregate groups its input by the group expressions and computes the
// aggregate specs per group. Output rows are the group keys followed by
// the aggregate results. With no group expressions it produces exactly
// one row (global aggregation).
type Aggregate struct {
	estNote
	Input  Operator
	Groups []expr.Bound
	Specs  []expr.AggSpec
	Names  []string // output column names: groups then aggregates

	sch  *types.Schema
	rows []types.Row
	pos  int
}

// Schema implements Operator.
func (a *Aggregate) Schema() *types.Schema {
	if a.sch == nil {
		cols := make([]types.Column, 0, len(a.Groups)+len(a.Specs))
		for i, g := range a.Groups {
			name := ""
			if i < len(a.Names) {
				name = a.Names[i]
			}
			if name == "" {
				name = g.String()
			}
			cols = append(cols, types.Column{Name: name, Kind: g.Kind()})
		}
		for i, s := range a.Specs {
			k, err := s.ResultKind()
			if err != nil {
				k = types.KindInvalid
			}
			name := ""
			if len(a.Groups)+i < len(a.Names) {
				name = a.Names[len(a.Groups)+i]
			}
			if name == "" {
				name = s.Name
			}
			cols = append(cols, types.Column{Name: name, Kind: k})
		}
		a.sch = &types.Schema{Columns: cols}
	}
	return a.sch
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sumI  int64
	sumF  float64
	min   types.Value
	max   types.Value
	any   bool
}

func (st *aggState) add(spec *expr.AggSpec, v types.Value) error {
	if spec.Func == expr.AggCount {
		// COUNT(*) counts rows (v is a dummy non-null); COUNT(x) skips NULLs.
		if !v.IsNull() {
			st.count++
		}
		return nil
	}
	if v.IsNull() {
		return nil
	}
	st.count++
	switch spec.Func {
	case expr.AggSum, expr.AggAvg:
		switch v.Kind {
		case types.KindInt:
			st.sumI += v.Int
			st.sumF += float64(v.Int)
		case types.KindFloat:
			st.sumF += v.Float
		default:
			return fmt.Errorf("exec: %s over %s", spec.Func, v.Kind)
		}
	case expr.AggMin:
		if !st.any {
			st.min = v.Clone()
		} else if c, err := v.Compare(st.min); err != nil {
			return err
		} else if c < 0 {
			st.min = v.Clone()
		}
	case expr.AggMax:
		if !st.any {
			st.max = v.Clone()
		} else if c, err := v.Compare(st.max); err != nil {
			return err
		} else if c > 0 {
			st.max = v.Clone()
		}
	}
	st.any = true
	return nil
}

func (st *aggState) result(spec *expr.AggSpec) types.Value {
	switch spec.Func {
	case expr.AggCount:
		return types.NewInt(st.count)
	case expr.AggSum:
		if !st.any {
			return types.Null()
		}
		if spec.Arg.Kind() == types.KindFloat {
			return types.NewFloat(st.sumF)
		}
		return types.NewInt(st.sumI)
	case expr.AggAvg:
		if st.count == 0 {
			return types.Null()
		}
		return types.NewFloat(st.sumF / float64(st.count))
	case expr.AggMin:
		if !st.any {
			return types.Null()
		}
		return st.min
	case expr.AggMax:
		if !st.any {
			return types.Null()
		}
		return st.max
	default:
		return types.Null()
	}
}

// Open implements Operator: it consumes the whole input and builds the
// grouped results.
func (a *Aggregate) Open(ec *expr.Ctx) error {
	if err := a.Input.Open(ec); err != nil {
		return err
	}
	type group struct {
		key    types.Row
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string
	for {
		row, err := a.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make(types.Row, len(a.Groups))
		var kb strings.Builder
		for i, g := range a.Groups {
			v, err := g.Eval(ec, row)
			if err != nil {
				return err
			}
			key[i] = v.Clone()
			kb.Write(types.EncodeValue(nil, v))
		}
		ks := kb.String()
		grp, ok := groups[ks]
		if !ok {
			grp = &group{key: key, states: make([]aggState, len(a.Specs))}
			groups[ks] = grp
			order = append(order, ks)
		}
		for i := range a.Specs {
			spec := &a.Specs[i]
			var v types.Value
			if spec.Arg == nil {
				v = types.NewInt(1) // COUNT(*): any non-null marker
			} else {
				v, err = spec.Arg.Eval(ec, row)
				if err != nil {
					return err
				}
			}
			if err := grp.states[i].add(spec, v); err != nil {
				return err
			}
		}
	}
	a.rows = a.rows[:0]
	if len(a.Groups) == 0 && len(order) == 0 {
		// Global aggregation over an empty input still yields one row.
		states := make([]aggState, len(a.Specs))
		row := make(types.Row, 0, len(a.Specs))
		for i := range a.Specs {
			row = append(row, states[i].result(&a.Specs[i]))
		}
		a.rows = append(a.rows, row)
	} else {
		for _, ks := range order {
			grp := groups[ks]
			row := make(types.Row, 0, len(grp.key)+len(a.Specs))
			row = append(row, grp.key...)
			for i := range a.Specs {
				row = append(row, grp.states[i].result(&a.Specs[i]))
			}
			a.rows = append(a.rows, row)
		}
	}
	a.pos = 0
	return nil
}

// Next implements Operator.
func (a *Aggregate) Next() (types.Row, error) {
	if a.pos >= len(a.rows) {
		return nil, nil
	}
	row := a.rows[a.pos]
	a.pos++
	return row, nil
}

// Close implements Operator.
func (a *Aggregate) Close() error {
	a.rows = nil
	rowsAggregate.Add(int64(a.pos))
	a.pos = 0
	return a.Input.Close()
}

// Explain implements Operator.
func (a *Aggregate) Explain() string {
	return fmt.Sprintf("Aggregate(%d groups, %d aggs)", len(a.Groups), len(a.Specs)) + a.estSuffix()
}

// Children implements Operator.
func (a *Aggregate) Children() []Operator { return []Operator{a.Input} }
