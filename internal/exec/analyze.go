package exec

import (
	"fmt"
	"time"

	"predator/internal/expr"
	"predator/internal/obs"
	"predator/internal/types"
)

// Per-operator rows-emitted counters. Operators count locally while
// running and flush on Close so the per-row path never touches atomics.
var (
	rowsSeqScan   = obs.Default.Counter("predator_exec_rows_total", "op", "seqscan")
	rowsFilter    = obs.Default.Counter("predator_exec_rows_total", "op", "filter")
	rowsProject   = obs.Default.Counter("predator_exec_rows_total", "op", "project")
	rowsJoin      = obs.Default.Counter("predator_exec_rows_total", "op", "nestedloopjoin")
	rowsSort      = obs.Default.Counter("predator_exec_rows_total", "op", "sort")
	rowsLimit     = obs.Default.Counter("predator_exec_rows_total", "op", "limit")
	rowsAggregate = obs.Default.Counter("predator_exec_rows_total", "op", "aggregate")
	rowsValues    = obs.Default.Counter("predator_exec_rows_total", "op", "values")
)

// Est holds planner estimates attached to an operator for EXPLAIN
// output: expected output cardinality and, where meaningful, the access
// path. Operators render it as a suffix of their Explain line.
type Est struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Access describes the access path (e.g. "heap chain, 12 pages").
	// Empty for operators where the notion does not apply.
	Access string
}

// estNote is embedded in every operator to carry optional estimates.
// The plan package sets the promoted Est field on the EXPLAIN path only,
// so normal execution never pays the estimation cost.
type estNote struct {
	Est *Est
}

// estSuffix renders the estimate annotation, or "" when unset.
func (e *estNote) estSuffix() string {
	if e.Est == nil {
		return ""
	}
	if e.Est.Access != "" {
		return fmt.Sprintf(" (est rows=%.0f via %s)", e.Est.Rows, e.Est.Access)
	}
	return fmt.Sprintf(" (est rows=%.0f)", e.Est.Rows)
}

// probe wraps an operator for EXPLAIN ANALYZE: it counts emitted rows
// and accumulates inclusive wall time across Open/Next/Close. The
// engine runs the instrumented tree to completion and then renders it
// with ExplainTree, which picks up the actuals via probe.Explain.
type probe struct {
	inner Operator
	rows  int64
	dur   time.Duration
}

// Instrument wraps every operator of a plan tree in a probe. Operators
// whose children cannot be re-attached (unknown types) are left
// unwrapped, so the tree still executes correctly.
func Instrument(op Operator) Operator {
	kids := op.Children()
	if len(kids) > 0 {
		wrapped := make([]Operator, len(kids))
		for i, c := range kids {
			wrapped[i] = Instrument(c)
		}
		if !setChildren(op, wrapped) {
			return op
		}
	}
	return &probe{inner: op}
}

// setChildren re-attaches (probe-wrapped) children to their parent.
// It reports whether the operator type is known.
func setChildren(op Operator, kids []Operator) bool {
	switch o := op.(type) {
	case *SeqScan, *Values:
		return true
	case *Filter:
		o.Input = kids[0]
		return true
	case *Project:
		o.Input = kids[0]
		return true
	case *NestedLoopJoin:
		o.Left, o.Right = kids[0], kids[1]
		return true
	case *Sort:
		o.Input = kids[0]
		return true
	case *Limit:
		o.Input = kids[0]
		return true
	case *Aggregate:
		o.Input = kids[0]
		return true
	case *probe:
		o.inner = kids[0]
		return true
	}
	return false
}

// Schema implements Operator.
func (p *probe) Schema() *types.Schema { return p.inner.Schema() }

// Open implements Operator.
func (p *probe) Open(ec *expr.Ctx) error {
	start := time.Now()
	err := p.inner.Open(ec)
	p.dur += time.Since(start)
	return err
}

// Next implements Operator.
func (p *probe) Next() (types.Row, error) {
	start := time.Now()
	row, err := p.inner.Next()
	p.dur += time.Since(start)
	if row != nil {
		p.rows++
	}
	return row, err
}

// Close implements Operator.
func (p *probe) Close() error {
	start := time.Now()
	err := p.inner.Close()
	p.dur += time.Since(start)
	return err
}

// Explain implements Operator: the wrapped node's line plus actuals.
func (p *probe) Explain() string {
	return fmt.Sprintf("%s (actual rows=%d time=%s)",
		p.inner.Explain(), p.rows, p.dur.Round(time.Microsecond))
}

// Children implements Operator. The inner operator's children are
// themselves probes, so ExplainTree shows actuals at every level.
func (p *probe) Children() []Operator { return p.inner.Children() }
