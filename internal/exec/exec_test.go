package exec

import (
	"fmt"
	"testing"

	"predator/internal/expr"
	"predator/internal/types"
)

// intSchema builds an (a INT, b INT) schema.
func intSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	)
}

func rows(pairs ...[2]int64) []types.Row {
	out := make([]types.Row, len(pairs))
	for i, p := range pairs {
		out[i] = types.Row{types.NewInt(p[0]), types.NewInt(p[1])}
	}
	return out
}

func colA() *expr.Col { return &expr.Col{Index: 0, K: types.KindInt, Name: "a"} }
func colB() *expr.Col { return &expr.Col{Index: 1, K: types.KindInt, Name: "b"} }

func gt(l expr.Bound, n int64) expr.Bound {
	return &expr.Cmp{Op: ">", L: l, R: &expr.Const{Value: types.NewInt(n)}}
}

func TestFilterRejectsFalseAndNull(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: append(rows([2]int64{1, 10}, [2]int64{5, 50}),
		types.Row{types.Null(), types.NewInt(99)})}
	f := &Filter{Input: in, Pred: gt(colA(), 2)}
	out, err := Run(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a=1 fails, a=5 passes, a=NULL yields NULL -> rejected.
	if len(out) != 1 || out[0][0].Int != 5 {
		t.Errorf("out = %v", out)
	}
}

func TestProjectComputesAndNames(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows([2]int64{3, 4})}
	p := &Project{
		Input: in,
		Exprs: []expr.Bound{
			&expr.Arith{Op: "+", L: colA(), R: colB(), K: types.KindInt},
			colA(),
		},
		Names: []string{"total", ""},
	}
	out, err := Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].Int != 7 || out[0][1].Int != 3 {
		t.Errorf("out = %v", out)
	}
	sch := p.Schema()
	if sch.Columns[0].Name != "total" || sch.Columns[1].Name != "a" {
		t.Errorf("schema = %s", sch)
	}
}

func TestNestedLoopJoinCrossAndOn(t *testing.T) {
	left := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 0}, [2]int64{2, 0})}
	right := &Values{
		Sch: types.NewSchema(types.Column{Name: "c", Kind: types.KindInt}),
		Rows: []types.Row{
			{types.NewInt(1)}, {types.NewInt(2)}, {types.NewInt(3)},
		},
	}
	cross := &NestedLoopJoin{Left: left, Right: right}
	out, err := Run(cross, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Errorf("cross join rows = %d, want 6", len(out))
	}
	if cross.Schema().Arity() != 3 {
		t.Errorf("join schema arity = %d", cross.Schema().Arity())
	}
	// a = c equijoin.
	left2 := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 0}, [2]int64{2, 0})}
	right2 := &Values{Sch: right.Sch, Rows: right.Rows}
	on := &expr.Cmp{Op: "=", L: colA(), R: &expr.Col{Index: 2, K: types.KindInt, Name: "c"}}
	join := &NestedLoopJoin{Left: left2, Right: right2, On: on}
	out, err = Run(join, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0].Int != out[0][2].Int {
		t.Errorf("equijoin = %v", out)
	}
}

func TestSortAscDescStable(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows(
		[2]int64{3, 1}, [2]int64{1, 2}, [2]int64{3, 3}, [2]int64{2, 4})}
	s := &Sort{Input: in, Keys: []SortKey{{Expr: colA()}}}
	out, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0].Int != 1 || out[3][0].Int != 3 {
		t.Errorf("asc = %v", out)
	}
	// Stability: the two a=3 rows keep input order (b=1 before b=3).
	if out[2][1].Int != 1 || out[3][1].Int != 3 {
		t.Errorf("not stable: %v", out)
	}
	in2 := &Values{Sch: intSchema(), Rows: in.Rows}
	s2 := &Sort{Input: in2, Keys: []SortKey{{Expr: colA(), Desc: true}, {Expr: colB()}}}
	out, _ = Run(s2, nil)
	if out[0][0].Int != 3 || out[0][1].Int != 1 {
		t.Errorf("desc multi-key = %v", out)
	}
}

func TestLimit(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 1}, [2]int64{2, 2}, [2]int64{3, 3})}
	out, err := Run(&Limit{Input: in, N: 2}, nil)
	if err != nil || len(out) != 2 {
		t.Errorf("limit 2 = %v, %v", out, err)
	}
	in2 := &Values{Sch: intSchema(), Rows: in.Rows}
	out, _ = Run(&Limit{Input: in2, N: 0}, nil)
	if len(out) != 0 {
		t.Errorf("limit 0 = %v", out)
	}
	in3 := &Values{Sch: intSchema(), Rows: in.Rows}
	out, _ = Run(&Limit{Input: in3, N: 10}, nil)
	if len(out) != 3 {
		t.Errorf("limit 10 = %v", out)
	}
}

func TestAggregateGlobal(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: append(rows([2]int64{1, 10}, [2]int64{2, 20}),
		types.Row{types.NewInt(3), types.Null()})}
	agg := &Aggregate{
		Input: in,
		Specs: []expr.AggSpec{
			{Func: expr.AggCount, Name: "COUNT(*)"},
			{Func: expr.AggCount, Arg: colB(), Name: "COUNT(b)"},
			{Func: expr.AggSum, Arg: colB(), Name: "SUM(b)"},
			{Func: expr.AggAvg, Arg: colB(), Name: "AVG(b)"},
			{Func: expr.AggMin, Arg: colB(), Name: "MIN(b)"},
			{Func: expr.AggMax, Arg: colB(), Name: "MAX(b)"},
		},
	}
	out, err := Run(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	row := out[0]
	if row[0].Int != 3 || row[1].Int != 2 || row[2].Int != 30 ||
		row[3].Float != 15 || row[4].Int != 10 || row[5].Int != 20 {
		t.Errorf("aggregates = %s", row)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	in := &Values{Sch: intSchema()}
	agg := &Aggregate{
		Input: in,
		Specs: []expr.AggSpec{
			{Func: expr.AggCount, Name: "n"},
			{Func: expr.AggSum, Arg: colA(), Name: "s"},
		},
	}
	out, err := Run(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Global aggregation over empty input yields one row: COUNT=0, SUM=NULL.
	if len(out) != 1 || out[0][0].Int != 0 || !out[0][1].IsNull() {
		t.Errorf("empty agg = %v", out)
	}
	// Grouped aggregation over empty input yields zero rows.
	in2 := &Values{Sch: intSchema()}
	agg2 := &Aggregate{Input: in2, Groups: []expr.Bound{colA()},
		Specs: []expr.AggSpec{{Func: expr.AggCount, Name: "n"}}}
	out, _ = Run(agg2, nil)
	if len(out) != 0 {
		t.Errorf("grouped empty agg = %v", out)
	}
}

func TestAggregateGrouped(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows(
		[2]int64{1, 10}, [2]int64{2, 20}, [2]int64{1, 30}, [2]int64{2, 40}, [2]int64{1, 2})}
	agg := &Aggregate{
		Input:  in,
		Groups: []expr.Bound{colA()},
		Specs:  []expr.AggSpec{{Func: expr.AggSum, Arg: colB(), Name: "s"}},
		Names:  []string{"a", "s"},
	}
	out, err := Run(agg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %v", out)
	}
	// Groups appear in first-seen order.
	if out[0][0].Int != 1 || out[0][1].Int != 42 || out[1][0].Int != 2 || out[1][1].Int != 60 {
		t.Errorf("grouped = %v", out)
	}
}

func TestExplainTreeRendersHierarchy(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 1})}
	plan := &Limit{N: 1, Input: &Filter{Input: in, Pred: gt(colA(), 0)}}
	out := ExplainTree(plan)
	want := "Limit(1)\n  Filter((a > 0)) [cost=0.3]\n    Values(1 rows)\n"
	if out != want {
		t.Errorf("explain = %q, want %q", out, want)
	}
}

func TestRunPropagatesEvalErrors(t *testing.T) {
	in := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 0})}
	div := &expr.Arith{Op: "/", L: colA(), R: colB(), K: types.KindInt}
	p := &Project{Input: in, Exprs: []expr.Bound{div}, Names: []string{"q"}}
	if _, err := Run(p, nil); err == nil {
		t.Error("division by zero not propagated")
	}
}

func TestOperatorReopen(t *testing.T) {
	// Operators must be re-openable (the inner side of a nested-loop
	// join in future plans; also retried queries).
	in := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 1}, [2]int64{2, 2})}
	s := &Sort{Input: in, Keys: []SortKey{{Expr: colA(), Desc: true}}}
	for i := 0; i < 2; i++ {
		out, err := Run(s, nil)
		if err != nil || len(out) != 2 || out[0][0].Int != 2 {
			t.Fatalf("reopen %d: %v, %v", i, out, err)
		}
	}
}

func TestJoinInnerMaterializedOnce(t *testing.T) {
	// countingOp counts Opens of the right side.
	right := &countingOp{inner: &Values{
		Sch:  types.NewSchema(types.Column{Name: "c", Kind: types.KindInt}),
		Rows: []types.Row{{types.NewInt(7)}},
	}}
	left := &Values{Sch: intSchema(), Rows: rows([2]int64{1, 1}, [2]int64{2, 2}, [2]int64{3, 3})}
	j := &NestedLoopJoin{Left: left, Right: right}
	out, err := Run(j, nil)
	if err != nil || len(out) != 3 {
		t.Fatalf("join = %v, %v", out, err)
	}
	if right.opens != 1 {
		t.Errorf("inner side opened %d times, want 1 (materialized)", right.opens)
	}
}

type countingOp struct {
	inner Operator
	opens int
}

func (c *countingOp) Schema() *types.Schema { return c.inner.Schema() }
func (c *countingOp) Open(ec *expr.Ctx) error {
	c.opens++
	return c.inner.Open(ec)
}
func (c *countingOp) Next() (types.Row, error) { return c.inner.Next() }
func (c *countingOp) Close() error             { return c.inner.Close() }
func (c *countingOp) Explain() string          { return fmt.Sprintf("Counting(%d)", c.opens) }
func (c *countingOp) Children() []Operator     { return []Operator{c.inner} }
