package exec

import (
	"fmt"
	"time"

	"predator/internal/core"
	"predator/internal/expr"
	"predator/internal/obs"
	"predator/internal/types"
)

// This file implements the batched, pipelined evaluation loop shared by
// Filter and Project. When an operator's expression is batchable (an
// expr.BatchBound over a core.BatchUDF) and the query context allows
// batching (ec.UDFBatch > 1), the operator gathers windows of input
// rows and evaluates each window with amortized UDF crossings, instead
// of one crossing per tuple.
//
// The loop is double-buffered: while the background goroutine evaluates
// window k (which, for isolated designs, mostly blocks on the executor
// process), the operator's own goroutine gathers window k+1 from its
// input. At most one window is ever in flight, so expression scratch
// state is never touched concurrently.
//
// Window sizes adapt: they start small (so short queries never pay for
// a large batch), double up to the configured cap, shrink to fit an
// approaching statement deadline, and cut off early when a window's
// gathered bytes reach batchByteCap (so wide BYTES rows cannot balloon
// a single protocol frame).

// batchStartRows is the first window's size.
const batchStartRows = 8

// batchByteCap bounds the approximate bytes gathered into one window.
const batchByteCap = 4 << 20

// window is one gathered batch of input rows plus its evaluation
// results. Filter fills res (predicate verdicts); Project fills out
// (assembled output rows).
type window struct {
	rows []types.Row
	res  []core.BatchResult
	out  []types.Row
	base int64 // absolute input index of rows[0], for error reporting
	err  error
	// panicked carries a panic out of the evaluation goroutine so it can
	// be re-raised on the operator's own goroutine, where the caller's
	// recovery (e.g. the server's per-request recover) sees it exactly
	// as on the scalar path.
	panicked any
	start    time.Time
	dur      time.Duration
}

// batchState drives gathering, pipelined evaluation and result
// iteration for one operator.
type batchState struct {
	ec    *expr.Ctx
	input Operator
	eval  func(w *window) error
	max   int // configured batch-size cap (ec.UDFBatch)

	size       int   // current adaptive target size
	eof        bool  // input exhausted
	stashed    error // gather-side error, surfaced after in-flight work drains
	cur        *window
	pos        int
	inflight   chan *window
	pending    int // windows launched but not yet received (0 or 1)
	spare      []*window
	absBase    int64
	lastRowDur time.Duration // per-row cost of the last window, for deadline fit

	// Retained across Close for EXPLAIN ANALYZE (reset on each Open).
	batches int64
	rowsIn  int64
}

func newBatchState(ec *expr.Ctx, input Operator, max int, eval func(w *window) error) *batchState {
	return &batchState{ec: ec, input: input, eval: retryLost(eval), max: max, inflight: make(chan *window, 1)}
}

// cLostRetries counts batch windows resubmitted after their shared
// executor died mid-crossing.
var cLostRetries = obs.Default.Counter("predator_exec_executor_lost_retries_total")

// retryLost resubmits a window once when its crossing was stranded by a
// shared-executor death (FaultExecutorLost). The class is retryable by
// construction — the window produced no partial results and the fleet
// routes the resubmission to a healthy process — so a single executor
// crash never kills the queries that merely shared its pipe. One retry
// only: a second loss means the fleet itself is unhealthy, and that is
// the client's retry decision, not ours.
func retryLost(eval func(w *window) error) func(w *window) error {
	return func(w *window) error {
		err := eval(w)
		if core.FaultClassOf(err) == core.FaultExecutorLost {
			cLostRetries.Inc()
			err = eval(w)
		}
		return err
	}
}

// next returns the window and position of the next evaluated row, or
// (nil, 0, nil) at end of stream.
func (b *batchState) next() (*window, int, error) {
	for {
		if b.cur != nil {
			if b.pos < len(b.cur.rows) {
				i := b.pos
				b.pos++
				return b.cur, i, nil
			}
			b.recycle(b.cur)
			b.cur = nil
		}
		if b.pending == 0 {
			w := b.gather()
			if w == nil {
				if err := b.stashed; err != nil {
					b.stashed = nil
					return nil, 0, err
				}
				return nil, 0, nil
			}
			b.launch(w)
		}
		// The pipeline overlap: gather window k+1 here while the
		// background goroutine evaluates window k.
		var queued *window
		if b.stashed == nil && !b.eof {
			queued = b.gather()
		}
		w := <-b.inflight
		b.pending--
		if w.panicked != nil {
			panic(w.panicked)
		}
		if n := len(w.rows); n > 0 {
			b.lastRowDur = w.dur / time.Duration(n)
		}
		if b.ec.Trace.Detailed() {
			b.ec.Trace.AddSpan(obs.SpanRecord{Name: "batch/window", Start: w.start, Dur: w.dur})
		}
		if w.err != nil {
			// The queued window dies with the query; Close drains
			// nothing because it was never launched.
			err := fmt.Errorf("batch rows %d..%d: %w",
				w.base, w.base+int64(len(w.rows))-1, w.err)
			b.recycle(w)
			return nil, 0, err
		}
		if queued != nil {
			b.launch(queued)
		}
		b.cur = w
		b.pos = 0
	}
}

// gather pulls up to the adaptive target of rows from the input. A nil
// return means no rows are available (end of input, or an input/deadline
// error stashed for later). A partial window is returned when the error
// arrives mid-gather, so rows read before it are still evaluated and
// emitted — matching the scalar path, which surfaces an input error
// only after emitting every earlier row.
func (b *batchState) gather() *window {
	if b.eof || b.stashed != nil {
		return nil
	}
	w := b.take()
	target := b.targetSize()
	bytes := 0
	for len(w.rows) < target {
		if err := b.ec.Check(); err != nil {
			b.stashed = err
			break
		}
		row, err := b.input.Next()
		if err != nil {
			b.stashed = err
			break
		}
		if row == nil {
			b.eof = true
			break
		}
		w.rows = append(w.rows, row)
		if bytes += rowFootprint(row); bytes >= batchByteCap {
			break
		}
	}
	if len(w.rows) == 0 {
		b.recycle(w)
		return nil
	}
	w.base = b.absBase
	b.absBase += int64(len(w.rows))
	return w
}

// targetSize advances the adaptive size: start small, double to the
// cap, and shrink when the statement deadline would expire before a
// full window completes at the last observed per-row cost (so a
// timeout fires between small batches instead of killing a large
// half-done one).
func (b *batchState) targetSize() int {
	switch {
	case b.size == 0:
		b.size = batchStartRows
	case b.size < b.max:
		b.size *= 2
	}
	if b.size > b.max {
		b.size = b.max
	}
	n := b.size
	if !b.ec.Deadline.IsZero() && b.lastRowDur > 0 {
		if fit := int(time.Until(b.ec.Deadline) / (2 * b.lastRowDur)); fit < n {
			n = fit
			if n < 1 {
				n = 1
			}
		}
	}
	return n
}

// launch starts background evaluation of a gathered window.
func (b *batchState) launch(w *window) {
	b.batches++
	b.rowsIn += int64(len(w.rows))
	b.pending++
	go func() {
		w.start = time.Now()
		defer func() {
			w.panicked = recover()
			w.dur = time.Since(w.start)
			b.inflight <- w
		}()
		w.err = b.eval(w)
	}()
}

// drain receives any in-flight window so no evaluation goroutine
// outlives the operator. Called from Close.
func (b *batchState) drain() {
	for b.pending > 0 {
		<-b.inflight
		b.pending--
	}
}

// recycle returns a window's slices to the spare pool for reuse. Only
// the headers are reused; emitted rows are owned by the consumer.
func (b *batchState) recycle(w *window) {
	w.rows = w.rows[:0]
	w.err = nil
	if len(b.spare) < 2 {
		b.spare = append(b.spare, w)
	}
}

func (b *batchState) take() *window {
	if n := len(b.spare); n > 0 {
		w := b.spare[n-1]
		b.spare = b.spare[:n-1]
		return w
	}
	return &window{}
}

// suffix renders batch statistics for EXPLAIN ANALYZE, e.g.
// " (batched: 4 batches, mean 62.5 rows)".
func (b *batchState) suffix() string {
	if b == nil || b.batches == 0 {
		return ""
	}
	return fmt.Sprintf(" (batched: %d batches, mean %.1f rows)",
		b.batches, float64(b.rowsIn)/float64(b.batches))
}

// rowFootprint approximates a row's in-flight size (value headers plus
// variable-length payloads).
func rowFootprint(r types.Row) int {
	n := 16 * len(r)
	for _, v := range r {
		n += len(v.Bytes) + len(v.Str)
	}
	return n
}

// sizeResults returns buf resized to n entries, reallocating only on
// growth. Entries are zeroed: EvalBatch overwrites every one, but a
// stale value must never survive an implementation that does not.
func sizeResults(buf []core.BatchResult, n int) []core.BatchResult {
	if cap(buf) < n {
		buf = make([]core.BatchResult, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = core.BatchResult{}
	}
	return buf
}

// batchFilterState builds the batch driver for a Filter whose predicate
// is batchable under the context's batch cap, or returns nil for the
// legacy scalar path.
func batchFilterState(ec *expr.Ctx, input Operator, pred expr.Bound) *batchState {
	if ec == nil || ec.UDFBatch <= 1 {
		return nil
	}
	bb, ok := pred.(expr.BatchBound)
	if !ok || !bb.Batchable() {
		return nil
	}
	return newBatchState(ec, input, ec.UDFBatch, func(w *window) error {
		w.res = sizeResults(w.res, len(w.rows))
		return bb.EvalBatch(ec, w.rows, w.res)
	})
}

// batchProjectState builds the batch driver for a Project with at least
// one batchable expression, or returns nil for the legacy scalar path.
// Batchable expressions evaluate with amortized crossings; the rest
// evaluate per row inside the same window pass. Errors surface in
// row-major order (earliest row wins; within a row, earliest
// expression), matching what the scalar path would have reported.
func batchProjectState(ec *expr.Ctx, input Operator, exprs []expr.Bound) *batchState {
	if ec == nil || ec.UDFBatch <= 1 {
		return nil
	}
	any := false
	for _, e := range exprs {
		if bb, ok := e.(expr.BatchBound); ok && bb.Batchable() {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	var scratch []core.BatchResult
	rowErr := []error(nil)
	return newBatchState(ec, input, ec.UDFBatch, func(w *window) error {
		n := len(w.rows)
		if cap(w.out) < n {
			w.out = make([]types.Row, n)
		}
		w.out = w.out[:n]
		for i := range w.out {
			// Fresh output rows per window: consumers own emitted rows,
			// exactly as on the scalar path.
			w.out[i] = make(types.Row, len(exprs))
		}
		if cap(rowErr) < n {
			rowErr = make([]error, n)
		}
		rowErr = rowErr[:n]
		for i := range rowErr {
			rowErr[i] = nil
		}
		for xi, e := range exprs {
			if bb, ok := e.(expr.BatchBound); ok && bb.Batchable() {
				scratch = sizeResults(scratch, n)
				if err := bb.EvalBatch(ec, w.rows, scratch); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if scratch[i].Err != nil {
						if rowErr[i] == nil {
							rowErr[i] = scratch[i].Err
						}
						continue
					}
					w.out[i][xi] = scratch[i].Value
				}
				continue
			}
			for i := 0; i < n; i++ {
				if rowErr[i] != nil {
					continue
				}
				v, err := e.Eval(ec, w.rows[i])
				if err != nil {
					rowErr[i] = err
					continue
				}
				w.out[i][xi] = v
			}
		}
		for _, err := range rowErr {
			if err != nil {
				return err
			}
		}
		return nil
	})
}
