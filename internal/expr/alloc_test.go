package expr

import (
	"testing"

	"predator/internal/core"
	"predator/internal/types"
)

// TestUDFCallEvalZeroAlloc pins the observability cost model: with
// tracing disabled (no detailed trace, no slow-query capture), the UDF
// scalar hot path must not allocate. The bind-time histogram handle,
// the grow-only scratch and the nil-safe Trace.Event gate all exist to
// keep this at zero; a regression here taxes every untraced query.
func TestUDFCallEvalZeroAlloc(t *testing.T) {
	reg := core.NewRegistry()
	if err := reg.Register(core.NewNative("add3", []types.Kind{types.KindInt, types.KindInt, types.KindInt},
		types.KindInt, func(_ *core.Ctx, args []types.Value) (types.Value, error) {
			return types.NewInt(args[0].Int + args[1].Int + args[2].Int), nil
		})); err != nil {
		t.Fatal(err)
	}
	bound := benchBind(t, `add3(i, i, i)`, reg)
	row := testRow()

	for _, tc := range []struct {
		name string
		ec   *Ctx
	}{
		{"nil-ctx", nil},
		{"untraced-ctx", &Ctx{}}, // non-nil ctx, nil Trace: the production shape
	} {
		// Warm the scratch so growth doesn't count as a steady-state alloc.
		if _, err := bound.Eval(tc.ec, row); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			v, err := bound.Eval(tc.ec, row)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int != 30 {
				t.Fatalf("got %d, want 30", v.Int)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: udfCall.Eval allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}
