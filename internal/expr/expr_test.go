package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"predator/internal/core"
	"predator/internal/sql"
	"predator/internal/types"
)

func testScope() *Scope {
	s := NewScope()
	s.AddTable("t", types.NewSchema(
		types.Column{Name: "i", Kind: types.KindInt},
		types.Column{Name: "f", Kind: types.KindFloat},
		types.Column{Name: "b", Kind: types.KindBool},
		types.Column{Name: "s", Kind: types.KindString},
		types.Column{Name: "y", Kind: types.KindBytes},
	))
	return s
}

func testRow() types.Row {
	return types.Row{
		types.NewInt(10),
		types.NewFloat(2.5),
		types.NewBool(true),
		types.NewString("abc"),
		types.NewBytes([]byte{1, 2, 3}),
	}
}

// bind parses and binds an expression against the test scope.
func bind(t *testing.T, src string, reg *core.Registry) Bound {
	t.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	b := &Binder{Scope: testScope(), Registry: reg}
	bound, err := b.Bind(e)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return bound
}

// evalStr evaluates a source expression over the test row.
func evalStr(t *testing.T, src string) types.Value {
	t.Helper()
	bound := bind(t, src, nil)
	v, err := bound.Eval(nil, testRow())
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := map[string]types.Value{
		`i + 5`:         types.NewInt(15),
		`i - 3 * 2`:     types.NewInt(4),
		`i / 3`:         types.NewInt(3),
		`i % 3`:         types.NewInt(1),
		`-i`:            types.NewInt(-10),
		`f * 2`:         types.NewFloat(5.0),
		`i + f`:         types.NewFloat(12.5), // int widens to float
		`f / 0.5`:       types.NewFloat(5.0),
		`s + 'def'`:     types.NewString("abcdef"),
		`LENGTH(s)`:     types.NewInt(3),
		`LENGTH(y)`:     types.NewInt(3),
		`ABS(0 - 7)`:    types.NewInt(7),
		`ABS(0.0 - f)`:  types.NewFloat(2.5),
		`UPPER(s)`:      types.NewString("ABC"),
		`LOWER('AB')`:   types.NewString("ab"),
		`GETBYTE(y, 1)`: types.NewInt(2),
	}
	for src, want := range cases {
		got := evalStr(t, src)
		if c, err := got.Compare(want); err != nil || c != 0 {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestEvalComparisonsAndLogic(t *testing.T) {
	trueCases := []string{
		`i = 10`, `i <> 9`, `i < 11`, `i <= 10`, `i > 9`, `i >= 10`,
		`f > 2`, `s = 'abc'`, `b = TRUE`,
		`i = 10 AND f > 1`, `i = 0 OR f > 1`, `NOT (i = 0)`,
		`i IS NOT NULL`, `NULL IS NULL`,
	}
	for _, src := range trueCases {
		if v := evalStr(t, src); v.IsNull() || !v.Bool {
			t.Errorf("%s = %s, want TRUE", src, v)
		}
	}
	falseCases := []string{`i = 9`, `i IS NULL`, `NOT b`, `i = 10 AND i = 9`}
	for _, src := range falseCases {
		if v := evalStr(t, src); v.IsNull() || v.Bool {
			t.Errorf("%s = %s, want FALSE", src, v)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// NULL comparisons yield NULL; Kleene AND/OR.
	nullCases := []string{
		`NULL = 1`, `i + NULL`, `NULL AND TRUE`, `NULL OR FALSE`, `NOT (NULL = NULL)`,
	}
	for _, src := range nullCases {
		if v := evalStr(t, src); !v.IsNull() {
			t.Errorf("%s = %s, want NULL", src, v)
		}
	}
	// Short-circuit dominance: FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
	if v := evalStr(t, `FALSE AND (NULL = 1)`); v.IsNull() || v.Bool {
		t.Errorf("FALSE AND NULL = %s", v)
	}
	if v := evalStr(t, `TRUE OR (NULL = 1)`); v.IsNull() || !v.Bool {
		t.Errorf("TRUE OR NULL = %s", v)
	}
	// And the commuted forms (no short-circuit).
	if v := evalStr(t, `(NULL = 1) AND FALSE`); v.IsNull() || v.Bool {
		t.Errorf("NULL AND FALSE = %s", v)
	}
	if v := evalStr(t, `(NULL = 1) OR TRUE`); v.IsNull() || !v.Bool {
		t.Errorf("NULL OR TRUE = %s", v)
	}
}

func TestEvalErrors(t *testing.T) {
	errCases := []string{`i / 0`, `i % 0`, `GETBYTE(y, 99)`}
	for _, src := range errCases {
		bound := bind(t, src, nil)
		if _, err := bound.Eval(nil, testRow()); err == nil {
			t.Errorf("%s should fail at eval", src)
		}
	}
}

func TestBindErrors(t *testing.T) {
	cases := []string{
		`nosuch`, `t.nosuch`, `x.i`,
		`i + s`, `s - s`, `f % f`, `b + b`,
		`i AND b`, `NOT i`, `-s`,
		`s < 1`, `y > y`, // bytes not ordered via < in SQL layer? Cmp supports bytes; but y > y vs...
		`LENGTH(i)`, `ABS(s)`, `UPPER(i)`, `LENGTH()`, `LENGTH(s, s)`,
		`nosuchfn(1)`,
		`SUM(i)`, // aggregate outside aggregation context
	}
	for _, src := range cases {
		e, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		b := &Binder{Scope: testScope(), Registry: nil}
		if _, err := b.Bind(e); err == nil {
			// bytes comparison is actually legal; remove from list if so
			if src == `y > y` {
				continue
			}
			t.Errorf("bind %q succeeded, want error", src)
		}
	}
}

func TestScopeAmbiguity(t *testing.T) {
	s := NewScope()
	sch := types.NewSchema(types.Column{Name: "id", Kind: types.KindInt})
	s.AddTable("a", sch)
	s.AddTable("b", sch)
	if _, _, err := s.Resolve("", "id"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous resolve: %v", err)
	}
	idx, _, err := s.Resolve("b", "id")
	if err != nil || idx != 1 {
		t.Errorf("qualified resolve = %d, %v", idx, err)
	}
}

func TestUDFCallStrictness(t *testing.T) {
	reg := core.NewRegistry()
	calls := 0
	reg.Register(core.NewNative("tally", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			calls++
			return types.NewInt(args[0].Int + 1), nil
		}))
	bound := bind(t, `tally(i)`, reg)
	v, err := bound.Eval(nil, testRow())
	if err != nil || v.Int != 11 {
		t.Fatalf("tally = %v, %v", v, err)
	}
	// NULL argument: UDF must NOT be invoked.
	callsBefore := calls
	nullBound := bind(t, `tally(i + NULL)`, reg)
	v, err = nullBound.Eval(nil, testRow())
	if err != nil || !v.IsNull() {
		t.Fatalf("tally(NULL) = %v, %v", v, err)
	}
	if calls != callsBefore {
		t.Error("UDF invoked with NULL argument (must be strict)")
	}
}

func TestUDFImplicitIntToFloat(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(core.NewNative("half", []types.Kind{types.KindFloat}, types.KindFloat,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			return types.NewFloat(args[0].Float / 2), nil
		}))
	bound := bind(t, `half(i)`, reg) // int arg widens
	v, err := bound.Eval(nil, testRow())
	if err != nil || v.Float != 5.0 {
		t.Errorf("half(10) = %v, %v", v, err)
	}
}

func TestCostOrdering(t *testing.T) {
	reg := core.NewRegistry()
	reg.Register(core.NewNative("cheapfn", []types.Kind{types.KindInt}, types.KindBool,
		func(*core.Ctx, []types.Value) (types.Value, error) { return types.NewBool(true), nil }))
	cheap := bind(t, `i = 10`, reg)
	udf := bind(t, `cheapfn(i)`, reg)
	if cheap.Cost() >= udf.Cost() {
		t.Errorf("comparison cost %f should be below UDF cost %f", cheap.Cost(), udf.Cost())
	}
}

func TestColumnsUsedAndShift(t *testing.T) {
	bound := bind(t, `i + LENGTH(s) > 0 AND f IS NULL`, nil)
	used := ColumnsUsed(bound)
	if !used[0] || !used[3] || !used[1] || used[2] || used[4] {
		t.Errorf("used = %v", used)
	}
	shifted := ShiftCols(bound, 1)
	used = ColumnsUsed(shifted)
	if !used[-1+1] || !used[2] || !used[0] {
		t.Errorf("shifted used = %v", used)
	}
	// Shifted expression evaluates against a shorter row.
	row := testRow()[1:] // drop column 0; indexes shift by 1... i was 0
	_ = row
	simple := bind(t, `f > 1.0`, nil) // col index 1
	s2 := ShiftCols(simple, 1)        // now col index 0
	v, err := s2.Eval(nil, types.Row{types.NewFloat(2.5)})
	if err != nil || !v.Bool {
		t.Errorf("shifted eval = %v, %v", v, err)
	}
}

// Property: integer arithmetic matches Go semantics over random rows.
func TestQuickArithMatchesGo(t *testing.T) {
	bound := bind(t, `i * 3 - i / 2`, nil)
	prop := func(x int64) bool {
		if x == 0 {
			return true
		}
		row := testRow()
		row[0] = types.NewInt(x)
		v, err := bound.Eval(nil, row)
		return err == nil && v.Int == x*3-x/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAggSpecResultKinds(t *testing.T) {
	intCol := &Col{Index: 0, K: types.KindInt, Name: "i"}
	floatCol := &Col{Index: 1, K: types.KindFloat, Name: "f"}
	strCol := &Col{Index: 3, K: types.KindString, Name: "s"}
	cases := []struct {
		spec AggSpec
		want types.Kind
		err  bool
	}{
		{AggSpec{Func: AggCount}, types.KindInt, false},
		{AggSpec{Func: AggSum, Arg: intCol}, types.KindInt, false},
		{AggSpec{Func: AggSum, Arg: floatCol}, types.KindFloat, false},
		{AggSpec{Func: AggSum, Arg: strCol}, types.KindInvalid, true},
		{AggSpec{Func: AggAvg, Arg: intCol}, types.KindFloat, false},
		{AggSpec{Func: AggMin, Arg: strCol}, types.KindString, false},
		{AggSpec{Func: AggMax, Arg: intCol}, types.KindInt, false},
	}
	for i, c := range cases {
		got, err := c.spec.ResultKind()
		if (err != nil) != c.err || got != c.want {
			t.Errorf("case %d: %v, %v", i, got, err)
		}
	}
	if !IsAggregateName("count") || !IsAggregateName("SUM") || IsAggregateName("length") {
		t.Error("IsAggregateName wrong")
	}
}
