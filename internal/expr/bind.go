package expr

import (
	"fmt"
	"strings"

	"predator/internal/core"
	"predator/internal/sql"
	"predator/internal/types"
)

// Binder resolves parser expressions against a scope and a UDF
// registry.
type Binder struct {
	Scope    *Scope
	Registry *core.Registry
	// NoInline binds UDF calls to their dispatch path even when the
	// body translated (SET UDF_INLINING OFF, ablations).
	NoInline bool
}

// Bind resolves and type-checks a parser expression.
func (b *Binder) Bind(e sql.Expr) (Bound, error) {
	switch n := e.(type) {
	case *sql.Literal:
		return &Const{Value: n.Value}, nil
	case *sql.ColumnRef:
		idx, kind, err := b.Scope.Resolve(n.Table, n.Column)
		if err != nil {
			return nil, err
		}
		return &Col{Index: idx, K: kind, Name: n.String()}, nil
	case *sql.UnaryExpr:
		x, err := b.Bind(n.X)
		if err != nil {
			return nil, err
		}
		if n.Op == "NOT" {
			if x.Kind() != types.KindBool {
				return nil, fmt.Errorf("expr: NOT over %s", x.Kind())
			}
			return &Not{X: x}, nil
		}
		if x.Kind() != types.KindInt && x.Kind() != types.KindFloat {
			return nil, fmt.Errorf("expr: unary minus over %s", x.Kind())
		}
		return &Neg{X: x}, nil
	case *sql.IsNull:
		x, err := b.Bind(n.X)
		if err != nil {
			return nil, err
		}
		return &NullTest{X: x, Negate: n.Negate}, nil
	case *sql.BinaryExpr:
		return b.bindBinary(n)
	case *sql.FuncCall:
		return b.bindCall(n)
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

func (b *Binder) bindBinary(n *sql.BinaryExpr) (Bound, error) {
	l, err := b.Bind(n.L)
	if err != nil {
		return nil, err
	}
	r, err := b.Bind(n.R)
	if err != nil {
		return nil, err
	}
	// A NULL literal (KindInvalid) is typable in any position; the
	// expression then evaluates to NULL per three-valued logic.
	lk, rk := l.Kind(), r.Kind()
	lNull, rNull := lk == types.KindInvalid, rk == types.KindInvalid
	switch n.Op {
	case "AND", "OR":
		if (lk != types.KindBool && !lNull) || (rk != types.KindBool && !rNull) {
			return nil, fmt.Errorf("expr: %s needs boolean operands, found %s and %s", n.Op, lk, rk)
		}
		return &Logic{Op: n.Op, L: l, R: r}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		if !lNull && !rNull && !comparable(lk, rk) {
			return nil, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
		}
		return &Cmp{Op: n.Op, L: l, R: r}, nil
	case "+", "-", "*", "/", "%":
		if n.Op == "+" && (lk == types.KindString || rk == types.KindString) &&
			(lk == types.KindString || lNull) && (rk == types.KindString || rNull) {
			return &Arith{Op: "+", L: l, R: r, K: types.KindString}, nil
		}
		if (!numeric(lk) && !lNull) || (!numeric(rk) && !rNull) {
			return nil, fmt.Errorf("expr: %s over %s and %s", n.Op, lk, rk)
		}
		k := types.KindInt
		if lk == types.KindFloat || rk == types.KindFloat {
			k = types.KindFloat
		}
		if n.Op == "%" && k != types.KindInt {
			return nil, fmt.Errorf("expr: %% needs integer operands")
		}
		return &Arith{Op: n.Op, L: l, R: r, K: k}, nil
	default:
		return nil, fmt.Errorf("expr: unknown operator %q", n.Op)
	}
}

func (b *Binder) bindCall(n *sql.FuncCall) (Bound, error) {
	name := strings.ToLower(n.Name)
	if IsAggregateName(name) {
		return nil, fmt.Errorf("expr: aggregate %s is not allowed here", strings.ToUpper(name))
	}
	args := make([]Bound, len(n.Args))
	for i, a := range n.Args {
		bound, err := b.Bind(a)
		if err != nil {
			return nil, err
		}
		args[i] = bound
	}
	if impl, ok := builtinFuncs[name]; ok {
		if len(args) != len(impl.argKinds) {
			return nil, fmt.Errorf("expr: %s takes %d argument(s), got %d", name, len(impl.argKinds), len(args))
		}
		for i, allowed := range impl.argKinds {
			ok := false
			for _, k := range allowed {
				if args[i].Kind() == k {
					ok = true
					break
				}
			}
			if !ok {
				return nil, fmt.Errorf("expr: %s argument %d has type %s", name, i+1, args[i].Kind())
			}
		}
		return &BuiltinCall{Name: name, Args: args, impl: impl, kind: impl.retKind(args)}, nil
	}
	if b.Registry != nil {
		if u, ok := b.Registry.Lookup(name); ok {
			return newUDFCall(u, args, b.NoInline)
		}
	}
	return nil, fmt.Errorf("expr: unknown function %q", n.Name)
}

func numeric(k types.Kind) bool { return k == types.KindInt || k == types.KindFloat }

func comparable(a, b types.Kind) bool {
	if a == b {
		return true
	}
	return numeric(a) && numeric(b)
}

// ColumnsUsed returns the set of column indexes an expression reads,
// used by the planner for predicate pushdown.
func ColumnsUsed(e Bound) map[int]bool {
	out := make(map[int]bool)
	collectCols(e, out)
	return out
}

func collectCols(e Bound, out map[int]bool) {
	switch n := e.(type) {
	case *Col:
		out[n.Index] = true
	case *Arith:
		collectCols(n.L, out)
		collectCols(n.R, out)
	case *Cmp:
		collectCols(n.L, out)
		collectCols(n.R, out)
	case *Logic:
		collectCols(n.L, out)
		collectCols(n.R, out)
	case *Not:
		collectCols(n.X, out)
	case *Neg:
		collectCols(n.X, out)
	case *NullTest:
		collectCols(n.X, out)
	case *BuiltinCall:
		for _, a := range n.Args {
			collectCols(a, out)
		}
	case *udfCall:
		for _, a := range n.args {
			collectCols(a, out)
		}
	case *inlinedCall:
		for _, a := range n.args {
			collectCols(a, out)
		}
	case *castFloat:
		collectCols(n.x, out)
	}
}

// ShiftCols returns a copy of the expression with every column index
// decreased by offset (rebasing join-level predicates onto one side).
func ShiftCols(e Bound, offset int) Bound {
	switch n := e.(type) {
	case *Const:
		return n
	case *Col:
		return &Col{Index: n.Index - offset, K: n.K, Name: n.Name}
	case *Arith:
		return &Arith{Op: n.Op, L: ShiftCols(n.L, offset), R: ShiftCols(n.R, offset), K: n.K}
	case *Cmp:
		return &Cmp{Op: n.Op, L: ShiftCols(n.L, offset), R: ShiftCols(n.R, offset)}
	case *Logic:
		return &Logic{Op: n.Op, L: ShiftCols(n.L, offset), R: ShiftCols(n.R, offset)}
	case *Not:
		return &Not{X: ShiftCols(n.X, offset)}
	case *Neg:
		return &Neg{X: ShiftCols(n.X, offset)}
	case *NullTest:
		return &NullTest{X: ShiftCols(n.X, offset), Negate: n.Negate}
	case *BuiltinCall:
		args := make([]Bound, len(n.Args))
		for i, a := range n.Args {
			args[i] = ShiftCols(a, offset)
		}
		return &BuiltinCall{Name: n.Name, Args: args, impl: n.impl, kind: n.kind}
	case *udfCall:
		args := make([]Bound, len(n.args))
		for i, a := range n.args {
			args[i] = ShiftCols(a, offset)
		}
		return &udfCall{udf: n.udf, args: args, batch: n.batch, hist: n.hist, ev: n.ev, bail: n.bail}
	case *inlinedCall:
		args := make([]Bound, len(n.args))
		for i, a := range n.args {
			args[i] = ShiftCols(a, offset)
		}
		return newInlinedCall(n.udf, n.prog, args)
	case *castFloat:
		return &castFloat{x: ShiftCols(n.x, offset)}
	default:
		return e
	}
}
