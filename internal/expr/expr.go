// Package expr provides bound (name-resolved, type-checked) expression
// trees evaluated by the executor. Binding turns parser ASTs
// (package sql) into Bound trees against a Scope of available columns,
// resolving function calls to built-ins or registered UDFs.
//
// Evaluation follows SQL three-valued logic: comparisons with NULL
// yield NULL, AND/OR/NOT follow Kleene logic, and UDFs are strict
// (any NULL argument short-circuits to a NULL result without crossing
// into the UDF).
package expr

import (
	"fmt"
	"math"
	"strings"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/obs"
	"predator/internal/types"
)

// Ctx carries per-query evaluation context into expressions.
type Ctx struct {
	// UDF is handed to UDF invocations (callback handler, logging,
	// statement deadline).
	UDF *core.Ctx
	// Deadline, when non-zero, is the statement deadline
	// (SET STATEMENT_TIMEOUT). Operators poll Check between rows.
	Deadline time.Time
	// Trace, when non-nil, collects per-query spans and events
	// (EXPLAIN ANALYZE). All Trace methods are nil-safe.
	Trace *obs.Trace
	// UDFBatch caps the rows carried per batched UDF crossing. Values
	// of 1 or less disable batching entirely (the legacy scalar path).
	UDFBatch int
	// Mem is the statement's memory reservation against its tenant
	// (nil = ungoverned). The executor charges materialized rows to it;
	// Check polls the tenant's CPU budget through it.
	Mem *govern.Reservation
	// Exec, when non-nil, is the statement's flight-recorder
	// registration (SHOW PROCESSLIST). The executor counts produced
	// rows on it and Check polls its KILL flag; all methods are
	// nil-safe atomics.
	Exec *obs.Execution
}

// DefaultBatchRows is the default cap on rows per batched UDF crossing
// (engine.Options.UDFBatchRows overrides it per engine).
const DefaultBatchRows = 256

// BatchBound is implemented by bound expressions that can evaluate a
// window of rows with amortized UDF crossings. Operators probe for it
// and, when Batchable reports true, switch from per-row Eval to
// EvalBatch over gathered row windows.
type BatchBound interface {
	Bound
	// Batchable reports whether batching actually helps here: the
	// underlying UDF implements core.BatchUDF.
	Batchable() bool
	// EvalBatch evaluates the expression for every row of the window,
	// writing exactly one BatchResult per row into out
	// (len(out) == len(rows)). Per-row UDF failures land in out[i].Err;
	// a non-nil return fails the whole window.
	EvalBatch(ec *Ctx, rows []types.Row, out []core.BatchResult) error
}

// Check reports a FaultCanceled once KILL has been issued for the
// statement, a FaultTimeout once the statement deadline has passed and
// a FaultQuota once the tenant's CPU budget is exhausted. It is cheap
// enough to call per row; a nil or unconstrained context always
// passes.
func (ec *Ctx) Check() error {
	if ec == nil {
		return nil
	}
	if ec.Exec.Killed() {
		return core.Faultf(core.FaultCanceled, "statement", "statement canceled by KILL")
	}
	if !ec.Deadline.IsZero() && time.Now().After(ec.Deadline) {
		return core.Faultf(core.FaultTimeout, "statement", "statement timeout exceeded")
	}
	if ec.Mem != nil {
		if err := ec.Mem.CheckCPU(); err != nil {
			return core.NewFault(core.FaultQuota, "statement", err)
		}
	}
	return nil
}

// Charge accounts n bytes of statement memory to the tenant, returning
// a FaultQuota when the reservation trips the hard limit.
func (ec *Ctx) Charge(n int64) error {
	if ec == nil || ec.Mem == nil {
		return nil
	}
	if err := ec.Mem.Grow(n); err != nil {
		return core.NewFault(core.FaultQuota, "statement", err)
	}
	return nil
}

// Bound is a resolved, evaluable expression.
type Bound interface {
	// Kind is the expression's result type.
	Kind() types.Kind
	// Eval computes the value for one input row.
	Eval(ec *Ctx, row types.Row) (types.Value, error)
	// Cost estimates per-row evaluation cost (arbitrary units; used by
	// the optimizer to order expensive predicates).
	Cost() float64
	// String renders the expression for EXPLAIN output.
	String() string
}

// Scope is the set of columns visible to an expression, in row order.
type Scope struct {
	cols []scopeCol
}

type scopeCol struct {
	qual string // table name or alias (lower case), may be ""
	name string // column name (lower case)
	kind types.Kind
	disp string // display name as declared
}

// NewScope returns an empty scope.
func NewScope() *Scope { return &Scope{} }

// AddTable appends a table's columns under the given qualifier.
func (s *Scope) AddTable(qual string, schema *types.Schema) {
	for _, c := range schema.Columns {
		s.cols = append(s.cols, scopeCol{
			qual: strings.ToLower(qual),
			name: strings.ToLower(c.Name),
			kind: c.Kind,
			disp: c.Name,
		})
	}
}

// Concat returns a scope with s's columns followed by other's.
func (s *Scope) Concat(other *Scope) *Scope {
	out := &Scope{cols: make([]scopeCol, 0, len(s.cols)+len(other.cols))}
	out.cols = append(out.cols, s.cols...)
	out.cols = append(out.cols, other.cols...)
	return out
}

// Arity returns the number of columns in scope.
func (s *Scope) Arity() int { return len(s.cols) }

// Schema materializes the scope as a row schema.
func (s *Scope) Schema() *types.Schema {
	out := &types.Schema{Columns: make([]types.Column, len(s.cols))}
	for i, c := range s.cols {
		out.Columns[i] = types.Column{Name: c.disp, Kind: c.kind}
	}
	return out
}

// Resolve finds the column index for a (possibly qualified) name.
func (s *Scope) Resolve(qual, name string) (int, types.Kind, error) {
	lq, ln := strings.ToLower(qual), strings.ToLower(name)
	found := -1
	for i, c := range s.cols {
		if c.name != ln {
			continue
		}
		if lq != "" && c.qual != lq {
			continue
		}
		if found >= 0 {
			return 0, types.KindInvalid, fmt.Errorf("expr: column reference %q is ambiguous", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, types.KindInvalid, fmt.Errorf("expr: unknown column %s.%s", qual, name)
		}
		return 0, types.KindInvalid, fmt.Errorf("expr: unknown column %q", name)
	}
	return found, s.cols[found].kind, nil
}

// Const is a literal value.
type Const struct {
	Value types.Value
}

// Kind implements Bound.
func (c *Const) Kind() types.Kind { return c.Value.Kind }

// Eval implements Bound.
func (c *Const) Eval(*Ctx, types.Row) (types.Value, error) { return c.Value, nil }

// Cost implements Bound.
func (c *Const) Cost() float64 { return 0 }

// String implements Bound.
func (c *Const) String() string { return c.Value.String() }

// Col reads a column from the input row.
type Col struct {
	Index int
	K     types.Kind
	Name  string
}

// Kind implements Bound.
func (c *Col) Kind() types.Kind { return c.K }

// Eval implements Bound.
func (c *Col) Eval(_ *Ctx, row types.Row) (types.Value, error) {
	if c.Index >= len(row) {
		return types.Value{}, fmt.Errorf("expr: column %d beyond row of %d values", c.Index, len(row))
	}
	return row[c.Index], nil
}

// Cost implements Bound.
func (c *Col) Cost() float64 { return 0.1 }

// String implements Bound.
func (c *Col) String() string { return c.Name }

// Arith is +, -, *, /, % over numeric operands (or + for strings).
type Arith struct {
	Op   string
	L, R Bound
	K    types.Kind
}

// Kind implements Bound.
func (a *Arith) Kind() types.Kind { return a.K }

// Cost implements Bound.
func (a *Arith) Cost() float64 { return a.L.Cost() + a.R.Cost() + 0.2 }

// String implements Bound.
func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Eval implements Bound.
func (a *Arith) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	l, err := a.L.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	r, err := a.R.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	if a.K == types.KindString {
		return types.NewString(l.Str + r.Str), nil
	}
	if a.K == types.KindFloat {
		x, y := l.AsFloat(), r.AsFloat()
		switch a.Op {
		case "+":
			return types.NewFloat(x + y), nil
		case "-":
			return types.NewFloat(x - y), nil
		case "*":
			return types.NewFloat(x * y), nil
		case "/":
			return types.NewFloat(x / y), nil
		default:
			return types.Value{}, fmt.Errorf("expr: %% on float")
		}
	}
	x, y := l.Int, r.Int
	switch a.Op {
	case "+":
		return types.NewInt(x + y), nil
	case "-":
		return types.NewInt(x - y), nil
	case "*":
		return types.NewInt(x * y), nil
	case "/":
		if y == 0 {
			return types.Value{}, fmt.Errorf("expr: division by zero")
		}
		if x == math.MinInt64 && y == -1 {
			return types.NewInt(math.MinInt64), nil
		}
		return types.NewInt(x / y), nil
	case "%":
		if y == 0 {
			return types.Value{}, fmt.Errorf("expr: modulo by zero")
		}
		if x == math.MinInt64 && y == -1 {
			return types.NewInt(0), nil
		}
		return types.NewInt(x % y), nil
	default:
		return types.Value{}, fmt.Errorf("expr: unknown arithmetic op %q", a.Op)
	}
}

// Cmp compares two values (= <> < <= > >=), returning BOOL or NULL.
type Cmp struct {
	Op   string
	L, R Bound
}

// Kind implements Bound.
func (c *Cmp) Kind() types.Kind { return types.KindBool }

// Cost implements Bound.
func (c *Cmp) Cost() float64 { return c.L.Cost() + c.R.Cost() + 0.2 }

// String implements Bound.
func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// Eval implements Bound.
func (c *Cmp) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	l, err := c.L.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	r, err := c.R.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	cmp, err := l.Compare(r)
	if err != nil {
		return types.Value{}, err
	}
	switch c.Op {
	case "=":
		return types.NewBool(cmp == 0), nil
	case "<>":
		return types.NewBool(cmp != 0), nil
	case "<":
		return types.NewBool(cmp < 0), nil
	case "<=":
		return types.NewBool(cmp <= 0), nil
	case ">":
		return types.NewBool(cmp > 0), nil
	case ">=":
		return types.NewBool(cmp >= 0), nil
	default:
		return types.Value{}, fmt.Errorf("expr: unknown comparison %q", c.Op)
	}
}

// Logic is AND/OR with Kleene three-valued semantics.
type Logic struct {
	Op   string // "AND" or "OR"
	L, R Bound
}

// Kind implements Bound.
func (l *Logic) Kind() types.Kind { return types.KindBool }

// Cost implements Bound.
func (l *Logic) Cost() float64 { return l.L.Cost() + l.R.Cost() + 0.1 }

// String implements Bound.
func (l *Logic) String() string { return fmt.Sprintf("(%s %s %s)", l.L, l.Op, l.R) }

// Eval implements Bound.
func (l *Logic) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	lv, err := l.L.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	// Short-circuit where the result is already determined.
	if !lv.IsNull() {
		if l.Op == "AND" && !lv.Bool {
			return types.NewBool(false), nil
		}
		if l.Op == "OR" && lv.Bool {
			return types.NewBool(true), nil
		}
	}
	rv, err := l.R.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	if l.Op == "AND" {
		switch {
		case !rv.IsNull() && !rv.Bool:
			return types.NewBool(false), nil
		case lv.IsNull() || rv.IsNull():
			return types.Null(), nil
		default:
			return types.NewBool(true), nil
		}
	}
	switch {
	case !rv.IsNull() && rv.Bool:
		return types.NewBool(true), nil
	case lv.IsNull() || rv.IsNull():
		return types.Null(), nil
	default:
		return types.NewBool(false), nil
	}
}

// Not negates a boolean (NULL stays NULL).
type Not struct {
	X Bound
}

// Kind implements Bound.
func (n *Not) Kind() types.Kind { return types.KindBool }

// Cost implements Bound.
func (n *Not) Cost() float64 { return n.X.Cost() + 0.1 }

// String implements Bound.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Eval implements Bound.
func (n *Not) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	v, err := n.X.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	return types.NewBool(!v.Bool), nil
}

// Neg is unary numeric negation.
type Neg struct {
	X Bound
}

// Kind implements Bound.
func (n *Neg) Kind() types.Kind { return n.X.Kind() }

// Cost implements Bound.
func (n *Neg) Cost() float64 { return n.X.Cost() + 0.1 }

// String implements Bound.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Eval implements Bound.
func (n *Neg) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	v, err := n.X.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	if v.Kind == types.KindFloat {
		return types.NewFloat(-v.Float), nil
	}
	return types.NewInt(-v.Int), nil
}

// NullTest is x IS [NOT] NULL.
type NullTest struct {
	X      Bound
	Negate bool
}

// Kind implements Bound.
func (t *NullTest) Kind() types.Kind { return types.KindBool }

// Cost implements Bound.
func (t *NullTest) Cost() float64 { return t.X.Cost() + 0.1 }

// String implements Bound.
func (t *NullTest) String() string {
	if t.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", t.X)
	}
	return fmt.Sprintf("(%s IS NULL)", t.X)
}

// Eval implements Bound.
func (t *NullTest) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	v, err := t.X.Eval(ec, row)
	if err != nil {
		return types.Value{}, err
	}
	return types.NewBool(v.IsNull() != t.Negate), nil
}
