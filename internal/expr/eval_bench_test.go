package expr

import (
	"testing"

	"predator/internal/core"
	"predator/internal/sql"
	"predator/internal/types"
)

// Benchmarks for the scalar evaluation hot path: per-call argument
// slices used to be allocated on every Eval; they now live in a
// grow-only scratch on the bound node. Run with -benchmem — the
// interesting number is allocs/op.

func benchBind(b testing.TB, src string, reg *core.Registry) Bound {
	b.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		b.Fatalf("parse %q: %v", src, err)
	}
	bound, err := (&Binder{Scope: testScope(), Registry: reg}).Bind(e)
	if err != nil {
		b.Fatalf("bind %q: %v", src, err)
	}
	return bound
}

func BenchmarkBuiltinEval(b *testing.B) {
	bound := benchBind(b, `LENGTH(s) + GETBYTE(y, 1)`, nil)
	row := testRow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := bound.Eval(nil, row)
		if err != nil {
			b.Fatal(err)
		}
		if v.Int != 5 {
			b.Fatalf("got %d, want 5", v.Int)
		}
	}
}

func BenchmarkUDFCallEval(b *testing.B) {
	reg := core.NewRegistry()
	if err := reg.Register(core.NewNative("add3", []types.Kind{types.KindInt, types.KindInt, types.KindInt},
		types.KindInt, func(_ *core.Ctx, args []types.Value) (types.Value, error) {
			return types.NewInt(args[0].Int + args[1].Int + args[2].Int), nil
		})); err != nil {
		b.Fatal(err)
	}
	bound := benchBind(b, `add3(i, i, i)`, reg)
	row := testRow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := bound.Eval(nil, row)
		if err != nil {
			b.Fatal(err)
		}
		if v.Int != 30 {
			b.Fatalf("got %d, want 30", v.Int)
		}
	}
}
