package expr

import (
	"fmt"
	"strings"
	"time"

	"predator/internal/core"
	"predator/internal/inline"
	"predator/internal/obs"
	"predator/internal/types"
)

// Built-in scalar functions (cheap, trusted, evaluated inline).

type builtinImpl struct {
	argKinds [][]types.Kind // acceptable kinds per argument (nil entry = any)
	retKind  func(args []Bound) types.Kind
	eval     func(args []types.Value) (types.Value, error)
	cost     float64
}

var builtinFuncs = map[string]*builtinImpl{
	"length": {
		argKinds: [][]types.Kind{{types.KindString, types.KindBytes}},
		retKind:  func([]Bound) types.Kind { return types.KindInt },
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind == types.KindString {
				return types.NewInt(int64(len(args[0].Str))), nil
			}
			return types.NewInt(int64(len(args[0].Bytes))), nil
		},
		cost: 0.2,
	},
	"abs": {
		argKinds: [][]types.Kind{{types.KindInt, types.KindFloat}},
		retKind:  func(args []Bound) types.Kind { return args[0].Kind() },
		eval: func(args []types.Value) (types.Value, error) {
			if args[0].Kind == types.KindFloat {
				f := args[0].Float
				if f < 0 {
					f = -f
				}
				return types.NewFloat(f), nil
			}
			n := args[0].Int
			if n < 0 {
				n = -n
			}
			return types.NewInt(n), nil
		},
		cost: 0.2,
	},
	"upper": {
		argKinds: [][]types.Kind{{types.KindString}},
		retKind:  func([]Bound) types.Kind { return types.KindString },
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToUpper(args[0].Str)), nil
		},
		cost: 0.5,
	},
	"lower": {
		argKinds: [][]types.Kind{{types.KindString}},
		retKind:  func([]Bound) types.Kind { return types.KindString },
		eval: func(args []types.Value) (types.Value, error) {
			return types.NewString(strings.ToLower(args[0].Str)), nil
		},
		cost: 0.5,
	},
	"getbyte": {
		argKinds: [][]types.Kind{{types.KindBytes}, {types.KindInt}},
		retKind:  func([]Bound) types.Kind { return types.KindInt },
		eval: func(args []types.Value) (types.Value, error) {
			i := args[1].Int
			if i < 0 || i >= int64(len(args[0].Bytes)) {
				return types.Value{}, fmt.Errorf("getbyte index %d out of range", i)
			}
			return types.NewInt(int64(args[0].Bytes[i])), nil
		},
		cost: 0.3,
	},
}

// IsBuiltin reports whether name is a built-in scalar function.
func IsBuiltin(name string) bool {
	_, ok := builtinFuncs[strings.ToLower(name)]
	return ok
}

// BuiltinCall evaluates a built-in scalar function (strict in NULLs).
type BuiltinCall struct {
	Name string
	Args []Bound
	impl *builtinImpl
	kind types.Kind

	// scratch is reused across rows so the hot Eval path does not
	// allocate an argument slice per tuple. A Bound tree belongs to one
	// operator and is evaluated by one goroutine at a time.
	scratch []types.Value
}

// Kind implements Bound.
func (b *BuiltinCall) Kind() types.Kind { return b.kind }

// Cost implements Bound.
func (b *BuiltinCall) Cost() float64 {
	c := b.impl.cost
	for _, a := range b.Args {
		c += a.Cost()
	}
	return c
}

// String implements Bound.
func (b *BuiltinCall) String() string {
	parts := make([]string, len(b.Args))
	for i, a := range b.Args {
		parts[i] = a.String()
	}
	return b.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Eval implements Bound.
func (b *BuiltinCall) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	if cap(b.scratch) < len(b.Args) {
		b.scratch = make([]types.Value, len(b.Args))
	}
	vals := b.scratch[:len(b.Args)]
	for i, a := range b.Args {
		v, err := a.Eval(ec, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		vals[i] = v
	}
	return b.impl.eval(vals)
}

// udfCall invokes a registered user-defined function. Strict: any NULL
// argument yields NULL without crossing into the UDF.
type udfCall struct {
	udf   core.UDF
	args  []Bound
	batch core.BatchUDF  // non-nil when the UDF supports batched crossings
	hist  *obs.Histogram // invoke latency, labelled by execution design
	ev    string         // trace event name ("udf:<name>")
	bail  string         // why the body was not inlined ("" = not a candidate)

	// Grow-only scratch reused across rows and windows (a Bound tree
	// belongs to one operator and is evaluated by one goroutine at a
	// time): per-row argument slice, batched row-major argument gather,
	// submitted-row index map, and batch results.
	scratch []types.Value
	flat    []types.Value
	outIdx  []int
	res     []core.BatchResult
}

// NewUDFCall binds a UDF invocation after checking the signature.
// UDFs whose bytecode translated (core.Inlinable) are lowered into
// the expression tree and evaluated in-process with zero crossings;
// everything else dispatches through the UDF's execution design.
func NewUDFCall(u core.UDF, args []Bound) (Bound, error) {
	return newUDFCall(u, args, false)
}

// NewUDFCallNoInline binds a UDF invocation that always dispatches
// through the UDF's execution design, even when the body translated
// (SET UDF_INLINING OFF, ablation benchmarks).
func NewUDFCallNoInline(u core.UDF, args []Bound) (Bound, error) {
	return newUDFCall(u, args, true)
}

func newUDFCall(u core.UDF, args []Bound, noInline bool) (Bound, error) {
	kinds := u.ArgKinds()
	if len(args) != len(kinds) {
		return nil, fmt.Errorf("expr: %s takes %d argument(s), got %d", u.Name(), len(kinds), len(args))
	}
	for i, a := range args {
		if a.Kind() != kinds[i] {
			// Allow INT literals where FLOAT is expected via implicit cast.
			if kinds[i] == types.KindFloat && a.Kind() == types.KindInt {
				args[i] = &castFloat{x: a}
				continue
			}
			return nil, fmt.Errorf("expr: %s argument %d must be %s, got %s",
				u.Name(), i+1, kinds[i], a.Kind())
		}
	}
	var bail string
	if inl, ok := u.(core.Inlinable); ok {
		var prog *inline.Program
		prog, bail = inl.InlineProgram()
		if prog != nil {
			if noInline {
				bail = "disabled"
			} else {
				return newInlinedCall(u, prog, args), nil
			}
		}
	}
	// Resolve the latency histogram once at bind time so Eval never
	// touches the registry map on the per-row path.
	hist := obs.Default.Histogram("predator_udf_invoke_seconds", "design", u.Design().String())
	batch, _ := u.(core.BatchUDF)
	return &udfCall{udf: u, args: args, batch: batch, hist: hist, ev: "udf:" + strings.ToLower(u.Name()), bail: bail}, nil
}

// Kind implements Bound.
func (u *udfCall) Kind() types.Kind { return u.udf.ReturnKind() }

// costBatchRows is the batch size the optimizer assumes when a
// process-isolated UDF supports batched crossings: the per-invocation
// crossing cost is amortized over this many rows.
const costBatchRows = 64

// Cost implements Bound. UDF costs dominate everything else and vary by
// design: crossing a process boundary is an order of magnitude more
// expensive than crossing into the VM, which is more expensive than a
// plain call (the Fig. 5 calibration quantifies this). Isolated designs
// that can batch amortize the crossing over costBatchRows rows, leaving
// a per-row residual (marshalling, dispatch) on top of the integrated
// base.
func (u *udfCall) Cost() float64 {
	var base float64
	switch u.udf.Design() {
	case core.DesignNativeIntegrated:
		base = 100
	case core.DesignSFINative:
		base = 120
	case core.DesignVMIntegrated:
		base = 200
	case core.DesignNativeIsolated:
		base = 2000
		if u.batch != nil {
			base = 120 + 2000.0/costBatchRows
		}
	case core.DesignVMIsolated:
		base = 2500
		if u.batch != nil {
			base = 220 + 2500.0/costBatchRows
		}
	}
	for _, a := range u.args {
		base += a.Cost()
	}
	return base
}

// String implements Bound. A call that was an inlining candidate but
// fell back carries its bail-out reason after "!", so EXPLAIN shows
// why the UDF still pays crossings: name[JNI !native-call:cb.get](x).
func (u *udfCall) String() string {
	parts := make([]string, len(u.args))
	for i, a := range u.args {
		parts[i] = a.String()
	}
	if u.bail != "" {
		return fmt.Sprintf("%s[%s !%s](%s)", u.udf.Name(), u.udf.Design(), u.bail, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s[%s](%s)", u.udf.Name(), u.udf.Design(), strings.Join(parts, ", "))
}

// Eval implements Bound.
func (u *udfCall) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	if cap(u.scratch) < len(u.args) {
		u.scratch = make([]types.Value, len(u.args))
	}
	vals := u.scratch[:len(u.args)]
	for i, a := range u.args {
		v, err := a.Eval(ec, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		vals[i] = v
	}
	var ctx *core.Ctx
	if ec != nil {
		ctx = ec.UDF
	}
	start := time.Now()
	out, err := u.udf.Invoke(ctx, vals)
	d := time.Since(start)
	u.hist.Observe(d)
	if ec != nil {
		ec.Trace.Event(u.ev, d)
	}
	return out, err
}

// Batchable implements BatchBound. Only process-isolated designs
// report true: for them a batch is genuinely one crossing, while an
// integrated design gains nothing from batching and would only disturb
// its per-invocation accounting (one histogram observation and one
// trace event per actual call).
func (u *udfCall) Batchable() bool {
	return u.batch != nil && !u.udf.Design().Integrated()
}

// EvalBatch implements BatchBound: argument vectors for the whole
// window are gathered (NULL-strict rows resolve to NULL locally, just
// like Eval, without crossing into the UDF), the remainder is submitted
// as one InvokeBatch, and results are scattered back by row index.
func (u *udfCall) EvalBatch(ec *Ctx, rows []types.Row, out []core.BatchResult) error {
	arity := len(u.args)
	u.flat = u.flat[:0]
	u.outIdx = u.outIdx[:0]
	for ri, row := range rows {
		mark := len(u.flat)
		strictNull := false
		for _, a := range u.args {
			v, err := a.Eval(ec, row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				strictNull = true
				break
			}
			u.flat = append(u.flat, v)
		}
		if strictNull {
			u.flat = u.flat[:mark]
			out[ri] = core.BatchResult{Value: types.Null()}
			continue
		}
		u.outIdx = append(u.outIdx, ri)
	}
	n := len(u.outIdx)
	if n == 0 {
		return nil
	}
	if cap(u.res) < n {
		u.res = make([]core.BatchResult, n)
	}
	res := u.res[:n]
	var ctx *core.Ctx
	if ec != nil {
		ctx = ec.UDF
	}
	start := time.Now()
	err := u.batch.InvokeBatch(ctx, arity, u.flat, res)
	d := time.Since(start)
	u.hist.Observe(d)
	if ec != nil {
		ec.Trace.Event(u.ev, d)
	}
	if err != nil {
		return err
	}
	for i, ri := range u.outIdx {
		out[ri] = res[i]
	}
	return nil
}

// castFloat widens an INT expression to FLOAT.
type castFloat struct {
	x Bound
}

// Kind implements Bound.
func (c *castFloat) Kind() types.Kind { return types.KindFloat }

// Cost implements Bound.
func (c *castFloat) Cost() float64 { return c.x.Cost() + 0.1 }

// String implements Bound.
func (c *castFloat) String() string { return fmt.Sprintf("FLOAT(%s)", c.x) }

// Eval implements Bound.
func (c *castFloat) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	v, err := c.x.Eval(ec, row)
	if err != nil || v.IsNull() {
		return v, err
	}
	return types.NewFloat(v.AsFloat()), nil
}

// Aggregate support: the executor's Aggregate operator uses these
// descriptors; expr only classifies and validates them.

// AggFunc names a supported aggregate.
type AggFunc string

// The supported aggregates.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// IsAggregateName reports whether name is an aggregate function name.
func IsAggregateName(name string) bool {
	switch AggFunc(strings.ToUpper(name)) {
	case AggCount, AggSum, AggAvg, AggMin, AggMax:
		return true
	}
	return false
}

// AggSpec describes one aggregate computation for the executor.
type AggSpec struct {
	Func AggFunc
	Arg  Bound // nil for COUNT(*)
	Name string
}

// ResultKind gives the aggregate's output type.
func (a *AggSpec) ResultKind() (types.Kind, error) {
	switch a.Func {
	case AggCount:
		return types.KindInt, nil
	case AggAvg:
		return types.KindFloat, nil
	case AggSum:
		if a.Arg.Kind() == types.KindFloat {
			return types.KindFloat, nil
		}
		if a.Arg.Kind() == types.KindInt {
			return types.KindInt, nil
		}
		return types.KindInvalid, fmt.Errorf("expr: SUM over %s", a.Arg.Kind())
	case AggMin, AggMax:
		return a.Arg.Kind(), nil
	default:
		return types.KindInvalid, fmt.Errorf("expr: unknown aggregate %s", a.Func)
	}
}
