package expr

import (
	"strings"
	"testing"

	"predator/internal/core"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
)

// registerJaguar compiles a Jaguar source and registers it as a
// Design 3 (VM-integrated) UDF; translatable bodies come back from the
// binder as inlinedCall nodes.
func registerJaguar(t testing.TB, reg *core.Registry, name, src string, args []types.Kind, ret types.Kind) {
	t.Helper()
	c, err := jaguar.Compile(src, "udf_"+name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	lc, err := jvm.New(jvm.Options{}).NewLoader("t").LoadClass(c)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	u, err := core.NewVM(core.VMUDFConfig{Name: name, Class: lc, Method: name, Args: args, Return: ret})
	if err != nil {
		t.Fatalf("NewVM %s: %v", name, err)
	}
	if err := reg.Register(u); err != nil {
		t.Fatal(err)
	}
}

// TestInlinedUDFEvalZeroAlloc extends the zero-alloc pin to the Froid
// path: a translated Jaguar body evaluated in the expression tree must
// not allocate per row — that is the whole point of inlining.
func TestInlinedUDFEvalZeroAlloc(t *testing.T) {
	reg := core.NewRegistry()
	registerJaguar(t, reg, "mix",
		`func mix(a int, b int) int { if (a > b) { return a * 3 - b; } return b * 3 - a; }`,
		[]types.Kind{types.KindInt, types.KindInt}, types.KindInt)
	bound := benchBind(t, `mix(i, i)`, reg)
	if _, ok := bound.(*inlinedCall); !ok {
		t.Fatalf("bound to %T, want *inlinedCall", bound)
	}
	row := testRow()

	for _, tc := range []struct {
		name string
		ec   *Ctx
	}{
		{"nil-ctx", nil},
		{"untraced-ctx", &Ctx{}},
	} {
		if _, err := bound.Eval(tc.ec, row); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			v, err := bound.Eval(tc.ec, row)
			if err != nil {
				t.Fatal(err)
			}
			if v.Int != 20 {
				t.Fatalf("got %d, want 20", v.Int)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: inlinedCall.Eval allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// TestInlineBindDecision pins which node the binder produces and what
// EXPLAIN will print for each case: translated bodies inline, bodies
// with natives fall back with the reason, and NoInline forces the
// dispatch path with reason "disabled".
func TestInlineBindDecision(t *testing.T) {
	reg := core.NewRegistry()
	registerJaguar(t, reg, "tri",
		`func tri(a int) int { return a * (a + 1) / 2; }`,
		[]types.Kind{types.KindInt}, types.KindInt)
	registerJaguar(t, reg, "peek",
		`func peek(a int) int { return cb_size(a); }`,
		[]types.Kind{types.KindInt}, types.KindInt)

	inlined := bind(t, `tri(i)`, reg)
	if _, ok := inlined.(*inlinedCall); !ok {
		t.Fatalf("tri bound to %T, want *inlinedCall", inlined)
	}
	if got := inlined.String(); !strings.Contains(got, "tri[inlined]") {
		t.Fatalf("inlined String = %q, want tri[inlined](...)", got)
	}

	fallback := bind(t, `peek(i)`, reg)
	if _, ok := fallback.(*udfCall); !ok {
		t.Fatalf("peek bound to %T, want *udfCall", fallback)
	}
	if got := fallback.String(); !strings.Contains(got, "peek[JNI !native-call:cb.size]") {
		t.Fatalf("fallback String = %q, want the bail-out reason", got)
	}

	u, _ := reg.Lookup("tri")
	off, err := NewUDFCallNoInline(u, []Bound{&Col{Index: 0, K: types.KindInt, Name: "i"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.String(); !strings.Contains(got, "tri[JNI !disabled]") {
		t.Fatalf("NoInline String = %q, want tri[JNI !disabled](...)", got)
	}
}

// TestInlinedMatchesVMDispatch is the expression-level differential:
// the same registered UDF evaluated inlined and through the VM must
// agree row for row, NULLs and traps included.
func TestInlinedMatchesVMDispatch(t *testing.T) {
	reg := core.NewRegistry()
	registerJaguar(t, reg, "ratio",
		`func ratio(a int, b int) int { return (a * a + 7) / b; }`,
		[]types.Kind{types.KindInt, types.KindInt}, types.KindInt)
	u, _ := reg.Lookup("ratio")
	args := func() []Bound {
		return []Bound{
			&Col{Index: 0, K: types.KindInt, Name: "i"},
			&Col{Index: 1, K: types.KindInt, Name: "j"},
		}
	}
	inl, err := NewUDFCall(u, args())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inl.(*inlinedCall); !ok {
		t.Fatalf("bound to %T, want *inlinedCall", inl)
	}
	vm, err := NewUDFCallNoInline(u, args())
	if err != nil {
		t.Fatal(err)
	}
	rows := []types.Row{
		{types.NewInt(10), types.NewInt(3)},
		{types.NewInt(-4), types.NewInt(5)},
		{types.NewInt(1), types.NewInt(0)}, // division by zero trap
		{types.Null(), types.NewInt(2)},    // strict NULL, arg 1
		{types.NewInt(2), types.Null()},    // strict NULL, arg 2
		{types.NewInt(1 << 31), types.NewInt(1)},
	}
	for _, row := range rows {
		iv, ierr := inl.Eval(nil, row)
		vv, verr := vm.Eval(nil, row)
		if (ierr == nil) != (verr == nil) {
			t.Fatalf("row %v: inlined err %v, vm err %v", row, ierr, verr)
		}
		if ierr != nil {
			// Different wrapping prefixes, same underlying trap.
			var it, vt *jvm.Trap
			if !asTrap(ierr, &it) || !asTrap(verr, &vt) || *it != *vt {
				t.Fatalf("row %v: trap mismatch: %v vs %v", row, ierr, verr)
			}
			continue
		}
		if iv.IsNull() != vv.IsNull() || (!iv.IsNull() && iv.Int != vv.Int) {
			t.Fatalf("row %v: inlined %v, vm %v", row, iv, vv)
		}
	}
}

func asTrap(err error, out **jvm.Trap) bool {
	for err != nil {
		if tr, ok := err.(*jvm.Trap); ok {
			*out = tr
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
