package expr

import (
	"fmt"
	"strings"

	"predator/internal/core"
	"predator/internal/inline"
	"predator/internal/jvm"
	"predator/internal/types"
)

// inlinedCall is a UDF whose translated body executes inside the
// expression tree: no process crossing, no VM frame, no histogram or
// trace bookkeeping — just a register program over scratch the node
// owns. This is the Froid path: Design-1 speed for verified bytecode,
// because the translator (package inline) only accepts bodies whose
// safety the verifier already proved. Strict in NULLs, like udfCall.
type inlinedCall struct {
	udf  core.UDF
	prog *inline.Program
	args []Bound

	// Scratch reused across rows (a Bound tree belongs to one operator
	// and is evaluated by one goroutine at a time): evaluated argument
	// values, their VM-typed conversions, and the register file.
	scratch []types.Value
	vargs   []jvm.Value
	regs    []jvm.Value
}

func newInlinedCall(u core.UDF, p *inline.Program, args []Bound) *inlinedCall {
	return &inlinedCall{
		udf: u, prog: p, args: args,
		scratch: make([]types.Value, len(args)),
		vargs:   make([]jvm.Value, len(args)),
		regs:    p.NewRegs(),
	}
}

// Kind implements Bound.
func (u *inlinedCall) Kind() types.Kind { return u.udf.ReturnKind() }

// Cost implements Bound. An inlined body costs what it is: a small
// dispatch base plus a per-instruction term — two to three orders of
// magnitude below any crossing design, so predicate reordering floats
// inlined filters ahead of VM and isolated ones.
func (u *inlinedCall) Cost() float64 {
	c := 1 + 0.02*float64(u.prog.NumOps())
	for _, a := range u.args {
		c += a.Cost()
	}
	return c
}

// String implements Bound: the "inlined" tag is what EXPLAIN prints
// where fallback calls show their execution design.
func (u *inlinedCall) String() string {
	parts := make([]string, len(u.args))
	for i, a := range u.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s[inlined](%s)", u.udf.Name(), strings.Join(parts, ", "))
}

// Eval implements Bound. Zero allocations per row on the success path
// (TestInlinedUDFEvalZeroAlloc pins this).
func (u *inlinedCall) Eval(ec *Ctx, row types.Row) (types.Value, error) {
	for i, a := range u.args {
		v, err := a.Eval(ec, row)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		u.scratch[i] = v
	}
	for i, v := range u.scratch {
		vv, err := jvm.ToVM(v)
		if err != nil {
			return types.Value{}, fmt.Errorf("expr: inlined %s argument %d: %w", u.udf.Name(), i+1, err)
		}
		u.vargs[i] = vv
	}
	out, err := u.prog.Run(u.regs, u.vargs)
	if err != nil {
		// Same traps, same messages as the VM raises for this bytecode;
		// only the prefix marks which engine hit it.
		return types.Value{}, fmt.Errorf("expr: inlined %s: %w", u.udf.Name(), err)
	}
	return jvm.FromVM(out, u.udf.ReturnKind())
}
