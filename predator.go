// Package predator is PREDATOR-Go: an embeddable object-relational
// database engine with secure, portable extensibility — a from-scratch
// Go reproduction of "Secure and Portable Database Extensibility"
// (Godfrey, Mayr, Seshadri, von Eicken; SIGMOD 1998).
//
// The engine supports user-defined functions (UDFs) under every
// server-side execution design the paper studies:
//
//   - Design 1 ("C++"): trusted native Go, in-process — fastest, unsafe.
//   - Design 2 ("IC++"): native code in an isolated executor process.
//   - Design 3 ("JNI"): Jaguar bytecode in the embedded, verified VM.
//   - Design 4: Jaguar bytecode in an isolated executor process.
//   - "BC++": native Go with explicit SFI bounds checks.
//
// Quick start:
//
//	db, err := predator.Open("stocks.db")
//	defer db.Close()
//	db.Exec(`CREATE TABLE stocks (sym STRING, history BYTES)`)
//	db.Exec(`CREATE FUNCTION investval(bytes) RETURNS float LANGUAGE jaguar AS $$
//	    func investval(h bytes) float {
//	        var sum int = 0;
//	        for (var i int = 0; i < len(h); i = i + 1) { sum = sum + h[i]; }
//	        if (len(h) == 0) { return 0.0; }
//	        return float(sum) / float(len(h));
//	    }
//	$$`)
//	res, err := db.Exec(`SELECT sym FROM stocks WHERE investval(history) > 5.0`)
//
// Programs that register isolated (Design 2/4) UDFs must call
// MaybeRunExecutor first thing in main; see that function's docs.
package predator

import (
	"io"
	"log/slog"
	"net/http"
	"time"

	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/govern"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/obs"
	"predator/internal/storage"
	"predator/internal/types"
)

// Re-exported value machinery so callers never import internal packages.
type (
	// Value is a single typed SQL datum.
	Value = types.Value
	// Row is one result tuple.
	Row = types.Row
	// Kind identifies a column/value type.
	Kind = types.Kind
	// Schema describes result columns.
	Schema = types.Schema
	// Column is one schema column.
	Column = types.Column
	// Result is the outcome of one SQL statement.
	Result = engine.Result
	// UDFContext is passed to native UDF implementations.
	UDFContext = core.Ctx
	// NativeUDF is the Go signature of a native UDF.
	NativeUDF = core.NativeFunc
	// NativeTable maps isolated native UDF names to implementations
	// for executor processes.
	NativeTable = isolate.NativeTable
	// ResourceLimits is a per-invocation UDF resource policy.
	ResourceLimits = jvm.Limits
	// SecurityPolicy is the allow-list security manager for VM UDFs.
	SecurityPolicy = jvm.Policy
	// Permission names a guarded capability.
	Permission = jvm.Permission
	// CheckedBytes is the SFI accessor for BC++-style UDFs.
	CheckedBytes = core.CheckedBytes
	// Session is a per-client execution context (statement timeouts).
	Session = engine.Session
	// Supervision is the executor supervision policy for isolated UDFs
	// (deadlines, restart budget, shutdown grace).
	Supervision = isolate.Supervision
	// ExecutorStats are process-wide executor supervision counters.
	ExecutorStats = isolate.Stats
	// Fault is a classified isolated-UDF execution error.
	Fault = core.Fault
	// FaultClass classifies a UDF execution failure.
	FaultClass = core.FaultClass
	// TenantQuota is a per-tenant resource ceiling (memory reservation
	// and executor CPU time per window).
	TenantQuota = govern.Quota
)

// Fault classes (see core.FaultClass).
const (
	FaultUDF      = core.FaultUDF
	FaultExecutor = core.FaultExecutor
	FaultProtocol = core.FaultProtocol
	FaultTimeout  = core.FaultTimeout
	FaultQuota    = core.FaultQuota
	FaultOverload = core.FaultOverload
	FaultDiskFull = core.FaultDiskFull
	FaultStorage  = core.FaultStorage
)

// FaultClassOf extracts the fault class from an error chain.
func FaultClassOf(err error) FaultClass { return core.FaultClassOf(err) }

// Retryable reports whether err is transient — admission shedding, a
// statement-timeout kill — and the statement can be resubmitted as-is
// after backing off. Quota trips are deterministic and not retryable.
func Retryable(err error) bool { return core.Retryable(err) }

// IsTimeout reports whether an error is a deadline-expiry fault.
func IsTimeout(err error) bool { return core.IsTimeout(err) }

// ReadExecutorStats snapshots the supervision counters (executor
// starts, invocations, timeouts, kills, restarts, evictions).
func ReadExecutorStats() ExecutorStats { return isolate.ReadStats() }

// MetricsHandler serves the process-wide metrics registry in Prometheus
// text exposition format; mount it wherever the embedding program runs
// its HTTP server (SHOW STATS exposes the same registry over SQL).
func MetricsHandler() http.Handler { return obs.Handler(obs.Default) }

// ServeMetrics starts an HTTP listener on addr exposing the metrics
// registry at /metrics and the flight-recorder dump at
// /debug/flightrecorder. It blocks; run it on its own goroutine.
func ServeMetrics(addr string) error { return obs.Serve(addr, obs.Default) }

// StartFlightRecorder begins sampling the metrics registry into the
// in-memory flight-recorder ring every interval (≤0 picks a default).
// The ring is bounded; old samples fall off. Idempotent.
func StartFlightRecorder(interval time.Duration) { obs.Flight.Start(interval) }

// WriteFlightRecorder writes the flight-recorder dump — live process
// list, recent per-query records and the sampled metrics history — as
// indented JSON (the same document /debug/flightrecorder serves).
func WriteFlightRecorder(w io.Writer) error { return obs.WriteFlightDump(w) }

// EnableFlightRecording toggles per-statement flight recording (live
// registry + query store) process-wide. On by default; turning it off
// reduces the per-statement observability cost to a few nil checks.
func EnableFlightRecording(on bool) { obs.EnableRecording(on) }

// Value type kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindBool   = types.KindBool
	KindString = types.KindString
	KindBytes  = types.KindBytes
)

// Permissions grantable to VM UDFs.
const (
	PermCallback = jvm.PermCallback
	PermLog      = jvm.PermLog
	PermTime     = jvm.PermTime
	PermFile     = jvm.PermFile
)

// Value constructors.
var (
	// NewInt builds an INT value.
	NewInt = types.NewInt
	// NewFloat builds a FLOAT value.
	NewFloat = types.NewFloat
	// NewBool builds a BOOL value.
	NewBool = types.NewBool
	// NewString builds a STRING value.
	NewString = types.NewString
	// NewBytes builds a BYTES value.
	NewBytes = types.NewBytes
	// Null builds the NULL value.
	Null = types.Null
	// NewPolicy builds a security policy allowing exactly the listed
	// permissions.
	NewPolicy = jvm.NewPolicy
	// NewCheckedBytes wraps a slice in the SFI accessor.
	NewCheckedBytes = core.NewCheckedBytes
)

// DB is an open PREDATOR-Go database.
type DB struct {
	eng *engine.Engine
}

// Option customizes Open.
type Option func(*engine.Options)

// WithBufferPoolPages sets the page-cache capacity.
func WithBufferPoolPages(n int) Option {
	return func(o *engine.Options) { o.BufferPoolPages = n }
}

// WithSecurityPolicy sets the VM security manager for Jaguar UDFs.
func WithSecurityPolicy(p *SecurityPolicy) Option {
	return func(o *engine.Options) { o.Security = p }
}

// WithJITDisabled forces the Jaguar VM interpreter (ablation use).
func WithJITDisabled() Option {
	return func(o *engine.Options) { o.DisableJIT = true }
}

// WithUDFLimits sets the default per-invocation resource policy for
// Jaguar UDFs (fuel instructions, allocation bytes, call depth).
func WithUDFLimits(l ResourceLimits) Option {
	return func(o *engine.Options) { o.UDFLimits = l }
}

// WithLogger routes UDF sys.log output and engine notices.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(o *engine.Options) { o.Logf = logf }
}

// WithSupervision sets the executor supervision policy for isolated
// (Design 2/4) UDFs registered through this database.
func WithSupervision(sup Supervision) Option {
	return func(o *engine.Options) { o.Supervision = sup }
}

// WithStatementTimeout sets the default statement deadline for
// sessions (overridable per session with SET STATEMENT_TIMEOUT).
func WithStatementTimeout(d time.Duration) Option {
	return func(o *engine.Options) { o.StatementTimeout = d }
}

// WithDurability selects the write-ahead-log fsync policy: "none" (no
// WAL; crashes may lose or corrupt recent writes), "commit" (fsync at
// each acknowledged mutating statement; the default) or "always"
// (fsync on every log append).
func WithDurability(mode string) Option {
	return func(o *engine.Options) { o.Durability = mode }
}

// WithCheckpointBytes sets the WAL size that triggers an automatic
// checkpoint (0 = the 8 MiB default, negative = manual CHECKPOINT
// statements only).
func WithCheckpointBytes(n int64) Option {
	return func(o *engine.Options) { o.CheckpointBytes = n }
}

// WithTraceDir enables SET TRACE = 'on' for sessions: each traced
// statement exports a Chrome trace-event JSON file (loadable in
// chrome://tracing or Perfetto) into dir. Sessions can always SET TRACE
// to an explicit file path, with or without this option.
func WithTraceDir(dir string) Option {
	return func(o *engine.Options) { o.TraceDir = dir }
}

// WithSlowQueryThreshold emits a structured log entry (see
// SetStructuredLogger) for every statement slower than d (0 disables).
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(o *engine.Options) { o.SlowQuery = d }
}

// WithTenantQuota sets the default resource ceiling every tenant
// starts with; sessions adjust their own tenant's ceiling with
// SET QUOTA_MEMORY / SET QUOTA_CPU. The zero quota is unlimited.
func WithTenantQuota(q TenantQuota) Option {
	return func(o *engine.Options) { o.Quota = q }
}

// WithFleetSize runs isolated UDFs on a shared fleet of n multiplexed
// executor processes instead of one process per UDF, keeping process
// count O(cores) however many sessions and UDFs are live. 0 (the
// default) keeps the dedicated-executor lifecycle. Inspect the fleet
// with SHOW EXECUTORS.
func WithFleetSize(n int) Option {
	return func(o *engine.Options) { o.FleetSize = n }
}

// WithArchiveDir enables WAL archiving into dir: every log generation
// is preserved as a segment before truncation, enabling online
// BACKUP TO '<dir>' and point-in-time restore with predator-restore.
func WithArchiveDir(dir string) Option {
	return func(o *engine.Options) { o.ArchiveDir = dir }
}

// WithScrubInterval runs the background scrubber: a paced checksum
// pass over data pages and archived WAL segments every interval,
// repairing corrupt pages from WAL/archive/backup. 0 (the default)
// disables scrubbing. Inspect with SHOW STORAGE.
func WithScrubInterval(d time.Duration) Option {
	return func(o *engine.Options) { o.ScrubInterval = d }
}

// Backup takes a consistent online base backup into dir while writers
// continue (same as the SQL BACKUP TO statement). Requires
// WithArchiveDir. Restore with predator-restore (or storage.Restore).
func (db *DB) Backup(dir string) error {
	_, err := db.eng.Backup(dir)
	return err
}

// SetStructuredLogger routes the engine's structured logs — slow
// queries, crash recovery, executor restarts — to l (nil restores the
// default stderr text handler). Process-wide, like the metrics registry.
func SetStructuredLogger(l *slog.Logger) { obs.SetLogger(l) }

// Open opens (or creates) a database file.
func Open(path string, opts ...Option) (*DB, error) {
	var eopts engine.Options
	for _, o := range opts {
		o(&eopts)
	}
	eng, err := engine.Open(path, eopts)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Close flushes and closes the database.
func (db *DB) Close() error { return db.eng.Close() }

// Exec runs one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) { return db.eng.Exec(sql) }

// Engine exposes the underlying engine for advanced embedding.
func (db *DB) Engine() *engine.Engine { return db.eng }

// Checkpoint flushes every dirty page and truncates the write-ahead
// log (same as the SQL CHECKPOINT statement).
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// RecoveryInfo describes the redo pass that ran (if any) when the
// database file was opened.
type RecoveryInfo = storage.RecoveryInfo

// Recovered reports whether crash recovery replayed the write-ahead
// log when this database was opened, and what it replayed.
func (db *DB) Recovered() RecoveryInfo { return db.eng.Recovered() }

// NewSession creates an independent session (own statement timeout);
// servers give each client connection one.
func (db *DB) NewSession() *Session { return db.eng.NewSession() }

// RegisterNativeUDF installs a trusted, in-process Go UDF (Design 1).
func (db *DB) RegisterNativeUDF(name string, args []Kind, ret Kind, fn NativeUDF) error {
	return db.eng.RegisterNative(name, args, ret, fn)
}

// RegisterSFIUDF installs a bounds-checked native UDF ("BC++"). The
// implementation should access byte arguments via NewCheckedBytes.
func (db *DB) RegisterSFIUDF(name string, args []Kind, ret Kind, fn NativeUDF) error {
	return db.eng.RegisterSFINative(name, args, ret, fn)
}

// RegisterIsolatedNativeUDF installs a Design 2 UDF. The name must be
// present in the NativeTable the program passed to MaybeRunExecutor.
func (db *DB) RegisterIsolatedNativeUDF(name string, args []Kind, ret Kind) error {
	return db.eng.RegisterNativeIsolated(name, args, ret)
}

// RegisterJaguarUDF compiles Jaguar source and installs it (Design 3,
// or Design 4 when isolated is true). persist stores the verified
// class in the catalog so the function survives restarts.
func (db *DB) RegisterJaguarUDF(name, source string, args []Kind, ret Kind, isolated, persist bool) error {
	return db.eng.RegisterJaguar(name, source, args, ret, isolated, persist)
}

// PutObject stores a large object server-side and returns the handle
// UDFs can use with the cb_* callback builtins.
func (db *DB) PutObject(data []byte) int64 { return db.eng.Objects().Put(data) }

// RemoveObject drops a stored object.
func (db *DB) RemoveObject(handle int64) { db.eng.Objects().Remove(handle) }

// MaybeRunExecutor turns the process into a UDF executor when spawned
// as one (Designs 2/4); it must be the first call in main for any
// program that uses isolated UDFs:
//
//	func main() {
//	    predator.MaybeRunExecutor(myNatives)
//	    ...
//	}
func MaybeRunExecutor(natives NativeTable) { isolate.MaybeRunExecutor(natives) }

// CompileJaguar compiles Jaguar source to verified-loadable class
// bytes (the portable unit clients upload to servers).
func CompileJaguar(source, className string) ([]byte, error) {
	return jaguar.CompileToBytes(source, className)
}
