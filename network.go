package predator

import (
	"predator/internal/client"
	"predator/internal/server"
)

// Server exposes a DB over TCP (one goroutine per client session, the
// PREDATOR threading model).
type Server struct {
	srv *server.Server
}

// Client is a connection to a PREDATOR-Go server, including the
// portable-UDF workflow (compile locally, test locally, migrate).
type Client = client.Client

// UDFSpec describes a portable UDF for the client migration workflow.
type UDFSpec = client.UDFSpec

// ServerOptions configures a network server (connection read deadline,
// default statement timeout, logging).
type ServerOptions = server.Options

// NewServer wraps a DB in a network server. Closing the server closes
// the DB.
func NewServer(db *DB, logf func(format string, args ...any)) *Server {
	return &Server{srv: server.New(db.eng, server.Options{Logf: logf})}
}

// NewServerWith wraps a DB in a network server with explicit options.
func NewServerWith(db *DB, opts ServerOptions) *Server {
	return &Server{srv: server.New(db.eng, opts)}
}

// Listen binds addr (use ":0" for an ephemeral port) and starts
// serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Addr returns the bound address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close stops serving and closes the underlying DB.
func (s *Server) Close() error { return s.srv.Close() }

// Dial connects to a PREDATOR-Go server.
func Dial(addr, user string) (*Client, error) { return client.Dial(addr, user) }
