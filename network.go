package predator

import (
	"context"

	"predator/internal/client"
	"predator/internal/server"
)

// Server exposes a DB over TCP (one goroutine per client session, the
// PREDATOR threading model).
type Server struct {
	srv *server.Server
}

// Client is a connection to a PREDATOR-Go server, including the
// portable-UDF workflow (compile locally, test locally, migrate).
type Client = client.Client

// UDFSpec describes a portable UDF for the client migration workflow.
type UDFSpec = client.UDFSpec

// ServerOptions configures a network server: connection read deadline,
// default statement timeout, logging, and overload policy (connection,
// query and per-tenant session caps with bounded admission waits).
type ServerOptions = server.Options

// ServerError is a typed server-side statement failure carrying the
// fault classification and the retryable flag.
type ServerError = client.ServerError

// IsRetryable reports whether a client-observed error is safe to retry
// as-is after backing off (admission shed, statement-timeout kill).
func IsRetryable(err error) bool { return client.IsRetryable(err) }

// NewServer wraps a DB in a network server. Closing the server closes
// the DB.
func NewServer(db *DB, logf func(format string, args ...any)) *Server {
	return &Server{srv: server.New(db.eng, server.Options{Logf: logf})}
}

// NewServerWith wraps a DB in a network server with explicit options.
func NewServerWith(db *DB, opts ServerOptions) *Server {
	return &Server{srv: server.New(db.eng, opts)}
}

// Listen binds addr (use ":0" for an ephemeral port) and starts
// serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Addr returns the bound address.
func (s *Server) Addr() string { return s.srv.Addr() }

// Close stops serving and closes the underlying DB immediately; any
// in-flight statements are cut off.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and statements, drains
// in-flight statements until ctx expires, then closes everything
// (including the underlying DB). Acknowledged results are never lost
// to a drain.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Dial connects to a PREDATOR-Go server.
func Dial(addr, user string) (*Client, error) { return client.Dial(addr, user) }
