package predator

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// The public-API surface, exercised the way an embedding program would
// use it. (TestMain lives in bench_test.go.)

func openDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "api.db"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPublicQuickstartFlow(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE t (x INT, s STRING)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("insert: %v, %v", res, err)
	}
	res, err = db.Exec(`SELECT x, UPPER(s) FROM t WHERE x > 1`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][1].Str != "B" {
		t.Fatalf("select: %v, %v", res, err)
	}
}

func TestPublicUDFRegistration(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (4)`); err != nil {
		t.Fatal(err)
	}
	// Native (Design 1).
	err := db.RegisterNativeUDF("sq", []Kind{KindInt}, KindInt,
		func(ctx *UDFContext, args []Value) (Value, error) {
			return NewInt(args[0].Int * args[0].Int), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// SFI (BC++).
	err = db.RegisterSFIUDF("first", []Kind{KindBytes}, KindInt,
		func(ctx *UDFContext, args []Value) (Value, error) {
			cb := NewCheckedBytes(args[0].Bytes)
			if cb.Len() == 0 {
				return NewInt(-1), nil
			}
			b, err := cb.Get(0)
			if err != nil {
				return Value{}, err
			}
			return NewInt(int64(b)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// Jaguar (Design 3), programmatic.
	err = db.RegisterJaguarUDF("halve", `func halve(x int) int { return x / 2; }`,
		[]Kind{KindInt}, KindInt, false, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT sq(x), halve(x), first(X'2A00') FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int != 16 || row[1].Int != 2 || row[2].Int != 42 {
		t.Errorf("row = %s", row)
	}
}

func TestPublicResourceLimitsOption(t *testing.T) {
	db := openDB(t, WithUDFLimits(ResourceLimits{Fuel: 500}))
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1000000)`); err != nil {
		t.Fatal(err)
	}
	err := db.RegisterJaguarUDF("burn", `
		func burn(n int) int {
			var a int = 0;
			for (var i int = 0; i < n; i = i + 1) { a = a + i * i; }
			return a;
		}`, []Kind{KindInt}, KindInt, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT burn(x) FROM t`); err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Errorf("fuel option not applied: %v", err)
	}
}

func TestPublicSecurityPolicyOption(t *testing.T) {
	policy := NewPolicy(PermCallback) // no log permission
	db := openDB(t, WithSecurityPolicy(policy))
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	err := db.RegisterJaguarUDF("chatty", `
		func chatty(x int) int { log("hello"); return x; }`,
		[]Kind{KindInt}, KindInt, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`SELECT chatty(x) FROM t`); err == nil {
		t.Error("log permission not denied")
	}
	if audit := policy.Audit(); len(audit) == 0 || !audit[0].Denied {
		t.Errorf("no audit: %+v", audit)
	}
}

func TestPublicObjectStore(t *testing.T) {
	db := openDB(t)
	h := db.PutObject([]byte{1, 2, 3, 4})
	if _, err := db.Exec(`CREATE TABLE t (h INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, h)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJaguarUDF("osz", `func osz(h int) int { return cb_size(h); }`,
		[]Kind{KindInt}, KindInt, false, false); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT osz(h) FROM t`)
	if err != nil || res.Rows[0][0].Int != 4 {
		t.Fatalf("osz = %v, %v", res, err)
	}
	db.RemoveObject(h)
	if _, err := db.Exec(`SELECT osz(h) FROM t`); err == nil {
		t.Error("removed object still served")
	}
}

func TestPublicServerClient(t *testing.T) {
	db := openDB(t)
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Server owns the DB now; don't double-close through the fixture.
	defer srv.Close()
	cl, err := Dial(addr, "apitest")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec(`CREATE TABLE r (v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO r VALUES (11), (22)`); err != nil {
		t.Fatal(err)
	}
	// Client-side compile + local test + migrate.
	spec := UDFSpec{
		Name:   "neg",
		Source: `func neg(x int) int { return -x; }`,
		Args:   []Kind{KindInt},
		Return: KindInt,
	}
	cls, err := cl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.TestLocally(spec, cls, []Value{NewInt(5)}, nil)
	if err != nil || out.Int != -5 {
		t.Fatalf("local: %v, %v", out, err)
	}
	if err := cl.Register(spec, cls); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`SELECT neg(v) FROM r ORDER BY v`)
	if err != nil || len(res.Rows) != 2 || res.Rows[0][0].Int != -11 {
		t.Fatalf("remote: %v, %v", res, err)
	}
}

func TestPublicCompileJaguar(t *testing.T) {
	data, err := CompileJaguar(`func f(x int) int { return x + 1; }`, "Pub")
	if err != nil || len(data) == 0 {
		t.Fatalf("compile: %d bytes, %v", len(data), err)
	}
	if _, err := CompileJaguar(`func f(x int) int { return y; }`, "Bad"); err == nil {
		t.Error("bad source compiled")
	}
}

func TestPublicPersistentUDFsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "persist.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (6)`); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterJaguarUDF("tw", `func tw(x int) int { return 2 * x; }`,
		[]Kind{KindInt}, KindInt, false, true); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`SELECT tw(x) FROM t`)
	if err != nil || res.Rows[0][0].Int != 12 {
		t.Fatalf("persisted UDF: %v, %v", res, err)
	}
}
