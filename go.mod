module predator

go 1.24
