// Quickstart: open a database, create a table, write a Jaguar UDF in
// SQL, and query through it — the minimal end-to-end tour of the
// public API.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"predator"
)

func main() {
	predator.MaybeRunExecutor(nil)

	dir, err := os.MkdirTemp("", "predator-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := predator.Open(filepath.Join(dir, "quickstart.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *predator.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	must(`CREATE TABLE readings (sensor STRING, fahrenheit INT)`)
	must(`INSERT INTO readings VALUES
		('roof', 212), ('lab', 68), ('freezer', 32), ('kiln', 1832)`)

	// A portable UDF, compiled and verified on registration. It runs
	// inside the embedded Jaguar VM (the paper's Design 3).
	must(`CREATE FUNCTION celsius(int) RETURNS int LANGUAGE jaguar AS $$
		func celsius(f int) int { return (f - 32) * 5 / 9; }
	$$`)

	res := must(`SELECT sensor, fahrenheit, celsius(fahrenheit) c
	             FROM readings WHERE celsius(fahrenheit) >= 0
	             ORDER BY c DESC`)
	fmt.Println("sensor      F       C")
	for _, row := range res.Rows {
		fmt.Printf("%-10s %5d %6d\n", row[0].Str, row[1].Int, row[2].Int)
	}

	// Aggregates work over UDF results too.
	res = must(`SELECT COUNT(*), AVG(celsius(fahrenheit)) FROM readings`)
	fmt.Printf("\n%d readings, average %.1f C\n", res.Rows[0][0].Int, res.Rows[0][1].Float)
}
