// Sunsets reproduces the paper's image-predicate scenario (§3.1):
//
//	SELECT * FROM Sunsets S
//	WHERE REDNESS(S.picture) > 0.7 AND S.location = 'fingerlakes'
//
// It demonstrates two things the paper analyzes:
//
//  1. Expensive-predicate placement: EXPLAIN shows the optimizer runs
//     the cheap location filter before the expensive REDNESS UDF.
//  2. The whole-object vs handle+callbacks trade-off (§5.6): one UDF
//     takes the full image bytes; another takes a handle and samples
//     pixels through server callbacks.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"predator"
)

// imageSize is one synthetic "image": 64x64 RGB bytes.
const imageSize = 64 * 64 * 3

// makeImage synthesizes an RGB image with the given red bias.
func makeImage(rnd *rand.Rand, redBias float64) []byte {
	img := make([]byte, imageSize)
	for p := 0; p < imageSize; p += 3 {
		r := rnd.Float64()
		if r < redBias {
			img[p] = byte(180 + rnd.Intn(76)) // red channel hot
			img[p+1] = byte(rnd.Intn(80))
			img[p+2] = byte(rnd.Intn(80))
		} else {
			img[p] = byte(rnd.Intn(120))
			img[p+1] = byte(rnd.Intn(256))
			img[p+2] = byte(rnd.Intn(256))
		}
	}
	return img
}

func main() {
	predator.MaybeRunExecutor(nil)

	dir, err := os.MkdirTemp("", "predator-sunsets-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := predator.Open(filepath.Join(dir, "sunsets.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *predator.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%v", err)
		}
		return res
	}

	must(`CREATE TABLE sunsets (id INT, location STRING, picture BYTES, handle INT)`)
	rnd := rand.New(rand.NewSource(7))
	locations := []string{"fingerlakes", "fingerlakes", "adirondacks", "fingerlakes", "catskills"}
	for i, loc := range locations {
		bias := 0.2
		if i%2 == 0 {
			bias = 0.8 // even ids are fiery sunsets
		}
		img := makeImage(rnd, bias)
		// Register the image as a server object too, so the
		// handle-based UDF can sample it via callbacks.
		handle := db.PutObject(img)
		must(fmt.Sprintf(`INSERT INTO sunsets VALUES (%d, '%s', X'%x', %d)`, i, loc, img, handle))
	}

	// REDNESS over the full image: the UDF receives all 12 KB.
	must(`CREATE FUNCTION redness(bytes) RETURNS float LANGUAGE jaguar AS $$
		// fraction of pixels whose red channel dominates
		func redness(img bytes) float {
			var hot int = 0;
			var pixels int = len(img) / 3;
			for (var p int = 0; p < pixels; p = p + 1) {
				var r int = img[p * 3];
				var g int = img[p * 3 + 1];
				var b int = img[p * 3 + 2];
				if (r > 150 && r > g + 50 && r > b + 50) { hot = hot + 1; }
			}
			if (pixels == 0) { return 0.0; }
			return float(hot) / float(pixels);
		}
	$$`)

	// REDNESS by handle: the UDF samples 200 pixels via callbacks
	// instead of receiving the whole image (§5.6's trade-off).
	must(`CREATE FUNCTION redness_cb(int) RETURNS float LANGUAGE jaguar AS $$
		func redness_cb(h int) float {
			var size int = cb_size(h);
			var pixels int = size / 3;
			if (pixels == 0) { return 0.0; }
			var step int = pixels / 200;
			if (step < 1) { step = 1; }
			var hot int = 0;
			var sampled int = 0;
			for (var p int = 0; p < pixels; p = p + step) {
				var px bytes = cb_read(h, p * 3, 3);
				if (px[0] > 150 && px[0] > px[1] + 50 && px[0] > px[2] + 50) { hot = hot + 1; }
				sampled = sampled + 1;
			}
			return float(hot) / float(sampled);
		}
	$$`)

	fmt.Println("bright sunsets in the Finger Lakes (full-image UDF):")
	res := must(`SELECT id, redness(picture) r FROM sunsets
	             WHERE redness(picture) > 0.7 AND location = 'fingerlakes'
	             ORDER BY r DESC`)
	for _, row := range res.Rows {
		fmt.Printf("  image %d: redness %.2f\n", row[0].Int, row[1].Float)
	}

	fmt.Println("\nsame query by handle + callbacks (sampled):")
	res = must(`SELECT id, redness_cb(handle) r FROM sunsets
	             WHERE redness_cb(handle) > 0.7 AND location = 'fingerlakes'
	             ORDER BY r DESC`)
	for _, row := range res.Rows {
		fmt.Printf("  image %d: redness ~%.2f\n", row[0].Int, row[1].Float)
	}

	fmt.Println("\nEXPLAIN: the optimizer runs the cheap location filter first,")
	fmt.Println("the expensive UDF predicate last (Hellerstein placement):")
	res = must(`EXPLAIN SELECT id FROM sunsets
	            WHERE redness(picture) > 0.7 AND location = 'fingerlakes'`)
	fmt.Print(res.Plan)
}
