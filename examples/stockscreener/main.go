// Stockscreener reproduces the paper's introductory scenario: a stock
// market database queried through the web, where any amateur investor
// supplies their own InvestVal formula as a UDF:
//
//	SELECT * FROM Stocks S
//	WHERE S.type = 'tech' AND InvestVal(S.history) > 5
//
// The investor's formula is untrusted, so it runs as verified Jaguar
// bytecode under a deny-by-default security policy and hard resource
// limits — and the example demonstrates both a malicious formula being
// denied and a runaway formula being stopped.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"predator"
)

func main() {
	predator.MaybeRunExecutor(nil)

	dir, err := os.MkdirTemp("", "predator-stocks-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The server grants UDFs callbacks and logging, nothing else, and
	// caps each invocation at 10M instructions / 16 MB allocations.
	db, err := predator.Open(filepath.Join(dir, "stocks.db"),
		predator.WithSecurityPolicy(predator.NewPolicy(predator.PermCallback, predator.PermLog)),
		predator.WithUDFLimits(predator.ResourceLimits{Fuel: 10_000_000, MaxAllocBytes: 16 << 20}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	must := func(sql string) *predator.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", firstLine(sql), err)
		}
		return res
	}

	must(`CREATE TABLE stocks (sym STRING, type STRING, history BYTES)`)

	// Synthetic price histories: one byte per trading day.
	rnd := rand.New(rand.NewSource(42))
	stocks := []struct{ sym, typ string }{
		{"ACME", "tech"}, {"GLOB", "tech"}, {"NANO", "tech"},
		{"OILCO", "energy"}, {"BANKX", "finance"},
	}
	for _, s := range stocks {
		hist := make([]byte, 250)
		price := 100 + rnd.Intn(50)
		for i := range hist {
			price += rnd.Intn(11) - 5
			if price < 1 {
				price = 1
			}
			if price > 255 {
				price = 255
			}
			hist[i] = byte(price)
		}
		must(fmt.Sprintf(`INSERT INTO stocks VALUES ('%s', '%s', X'%x')`, s.sym, s.typ, hist))
	}

	// The amateur investor's formula: average momentum over the last
	// 50 days, in percent. Untrusted code, Design 3.
	must(`CREATE FUNCTION investval(bytes) RETURNS float LANGUAGE jaguar AS $$
		// momentum: percentage change between the mean of the last 50
		// days and the mean of the 50 days before that — written by a
		// user, not the DBA.
		func investval(h bytes) float {
			var n int = len(h);
			if (n < 100) { return 0.0; }
			var recent int = 0;
			var past int = 0;
			for (var i int = n - 50; i < n; i = i + 1) { recent = recent + h[i]; }
			for (var i int = n - 100; i < n - 50; i = i + 1) { past = past + h[i]; }
			if (past == 0) { return 0.0; }
			return (float(recent) - float(past)) / float(past) * 100.0;
		}
	$$`)

	fmt.Println("tech stocks by momentum (InvestVal):")
	res := must(`SELECT sym, investval(history) v FROM stocks
	             WHERE type = 'tech' ORDER BY v DESC`)
	for _, row := range res.Rows {
		fmt.Printf("  %-6s %+.2f%%\n", row[0].Str, row[1].Float)
	}

	fmt.Println("\nstocks the formula flags (InvestVal > 0.5):")
	res = must(`SELECT sym, type FROM stocks WHERE investval(history) > 0.5`)
	for _, row := range res.Rows {
		fmt.Printf("  %-6s (%s)\n", row[0].Str, row[1].Str)
	}

	// A malicious "formula" that tries to read the clock (a covert
	// channel): the security manager denies it.
	must(`CREATE FUNCTION evil(bytes) RETURNS int LANGUAGE jaguar AS $$
		func evil(h bytes) int { return time(); }
	$$`)
	if _, err := db.Exec(`SELECT evil(history) FROM stocks`); err != nil {
		fmt.Printf("\nmalicious UDF denied: %v\n", err)
	}

	// A buggy formula that never terminates: the fuel limit stops it.
	must(`CREATE FUNCTION buggy(bytes) RETURNS int LANGUAGE jaguar AS $$
		func buggy(h bytes) int {
			var acc int = 0;
			while (acc >= 0) { acc = acc + 1; }
			return acc;
		}
	$$`)
	if _, err := db.Exec(`SELECT buggy(history) FROM stocks`); err != nil {
		fmt.Printf("runaway UDF stopped: %v\n", err)
	}

	fmt.Println("\nthe server survived both; regular queries still run:")
	res = must(`SELECT COUNT(*) FROM stocks`)
	fmt.Printf("  %d stocks on file\n", res.Rows[0][0].Int)
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
