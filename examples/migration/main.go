// Migration demonstrates the paper's §6.4 portability workflow over a
// real client/server connection:
//
//  1. the client compiles a Jaguar UDF locally,
//  2. tests it in its OWN VM (same verified bytecode the server will run),
//  3. migrates it to the server (uploading class bytes, which the
//     server re-verifies before installing),
//  4. runs server-side queries through it,
//  5. a second client downloads the class back and runs it locally —
//     the identical code executes at either site.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"predator"
)

func main() {
	predator.MaybeRunExecutor(nil)

	dir, err := os.MkdirTemp("", "predator-migration-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Start an in-process server (the same code path as
	// cmd/predator-server).
	db, err := predator.Open(filepath.Join(dir, "server.db"))
	if err != nil {
		log.Fatal(err)
	}
	srv := predator.NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", addr)

	// The developer's client.
	cl, err := predator.Dial(addr, "developer")
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Exec(`CREATE TABLE words (w STRING)`); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO words VALUES ('level'), ('rotor'), ('jaguar'), ('racecar')`); err != nil {
		log.Fatal(err)
	}

	// The developer writes the UDF against the BYTES type (Jaguar's
	// random-access data type) and will iterate locally until the
	// tests below pass — the workflow the paper advocates.
	spec := predator.UDFSpec{
		Name: "is_pal",
		Source: `
		func is_pal(b bytes) int {
			var i int = 0;
			var j int = len(b) - 1;
			while (i < j) {
				if (b[i] != b[j]) { return 0; }
				i = i + 1;
				j = j - 1;
			}
			return 1;
		}`,
		Args:    []predator.Kind{predator.KindBytes},
		Return:  predator.KindInt,
		Persist: true,
	}

	// 1. Compile locally.
	classBytes, err := cl.Compile(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled is_pal to %d bytes of verified Jaguar class\n", len(classBytes))

	// 2. Test locally in the client's own VM.
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"racecar", 1}, {"jaguar", 0}, {"", 1}, {"ab", 0},
	} {
		out, err := cl.TestLocally(spec, classBytes, []predator.Value{predator.NewBytes([]byte(tc.in))}, nil)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if out.Int != tc.want {
			status = "WRONG"
		}
		fmt.Printf("  local test is_pal(%q) = %d  %s\n", tc.in, out.Int, status)
	}

	// 3. Migrate: upload the same class bytes to the server.
	if err := cl.Register(spec, classBytes); err != nil {
		log.Fatal(err)
	}
	fmt.Println("migrated is_pal to the server")

	// 4. Use it server-side. (The table stores strings; add a bytes
	// column carrying the same text for the UDF.)
	if _, err := cl.Exec(`CREATE TABLE wordbytes (w STRING, wb BYTES)`); err != nil {
		log.Fatal(err)
	}
	for _, w := range []string{"level", "rotor", "jaguar", "racecar", "predator"} {
		if _, err := cl.Exec(fmt.Sprintf(`INSERT INTO wordbytes VALUES ('%s', X'%x')`, w, w)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := cl.Exec(`SELECT w FROM wordbytes WHERE is_pal(wb) = 1 ORDER BY w`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server-side palindromes:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0].Str)
	}

	// 5. A second client downloads the class and runs it locally: the
	// same bytecode executes at either site.
	cl2, err := predator.Dial(addr, "analyst")
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Close()
	fetched, args, ret, err := cl2.FetchClass("is_pal")
	if err != nil {
		log.Fatal(err)
	}
	out, err := cl2.TestLocally(predator.UDFSpec{Name: "is_pal", Args: args, Return: ret},
		fetched, []predator.Value{predator.NewBytes([]byte("rotor"))}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second client downloaded the class (%d bytes) and ran it locally: is_pal('rotor') = %d\n",
		len(fetched), out.Int)
}
