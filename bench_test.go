package predator

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (run `go test -bench=. -benchmem`). These measure the same effects
// the paper's figures plot, expressed as per-UDF-invocation costs; the
// cmd/predator-bench binary prints the full paper-shaped tables.

import (
	"fmt"
	"os"
	"testing"

	"predator/internal/bench"
)

var (
	benchH      *bench.Harness // shared JIT harness
	benchInterp *bench.Harness // interpreter-only harness (ablation)
)

func TestMain(m *testing.M) {
	MaybeRunExecutor(bench.Natives)
	code := m.Run()
	if benchH != nil {
		benchH.Close()
	}
	if benchInterp != nil {
		benchInterp.Close()
	}
	os.Exit(code)
}

// benchRows keeps benchmark workloads CI-sized; the predator-bench
// binary runs the paper's full 10,000-row scale.
const (
	benchRows  = 1000
	benchCalls = 100
)

func harness(b *testing.B) *bench.Harness {
	b.Helper()
	if benchH == nil {
		h, err := bench.NewHarness(bench.Config{Rows: benchRows})
		if err != nil {
			b.Fatal(err)
		}
		benchH = h
	}
	return benchH
}

func interpHarness(b *testing.B) *bench.Harness {
	b.Helper()
	if benchInterp == nil {
		h, err := bench.NewHarness(bench.Config{Rows: benchRows, DisableJIT: true})
		if err != nil {
			b.Fatal(err)
		}
		benchInterp = h
	}
	return benchInterp
}

// runQueryBench times the paper's benchmark query, reporting
// ns-per-UDF-invocation alongside the standard per-op figure.
func runQueryBench(b *testing.B, h *bench.Harness, design string, baSize, indep, dep, ncb int) {
	b.Helper()
	// Warm up executors / JIT outside the timer.
	if _, err := h.RunQuery(design, baSize, indep, dep, ncb, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RunQuery(design, baSize, indep, dep, ncb, benchCalls); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perInv := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(benchCalls)
	b.ReportMetric(perInv, "ns/udf-invocation")
}

// BenchmarkTable1DesignSpace measures the bare invocation cost of each
// design (the qualitative Table 1, quantified).
func BenchmarkTable1DesignSpace(b *testing.B) {
	h := harness(b)
	for _, d := range bench.AllDesigns {
		b.Run("design="+bench.Label(d), func(b *testing.B) {
			runQueryBench(b, h, d, 100, 0, 0, 0)
		})
	}
}

// BenchmarkFig4TableAccess is the calibration: the trivial UDF over
// each relation (table-access cost only).
func BenchmarkFig4TableAccess(b *testing.B) {
	h := harness(b)
	for _, size := range bench.BASizes {
		b.Run(fmt.Sprintf("rel=%s", bench.RelName(size)), func(b *testing.B) {
			if _, err := h.BaseCost(size, 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.BaseCost(size, benchCalls); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perInv := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(benchCalls)
			b.ReportMetric(perInv, "ns/udf-invocation")
		})
	}
}

// BenchmarkFig5Invocation: no-op generic UDF, byte-array size swept,
// per design (invocation + argument-passing cost).
func BenchmarkFig5Invocation(b *testing.B) {
	h := harness(b)
	for _, size := range bench.BASizes {
		for _, d := range bench.AllDesigns {
			b.Run(fmt.Sprintf("ba=%d/design=%s", size, bench.Label(d)), func(b *testing.B) {
				runQueryBench(b, h, d, size, 0, 0, 0)
			})
		}
	}
}

// BenchmarkFig6Computation: data-independent computation swept.
func BenchmarkFig6Computation(b *testing.B) {
	h := harness(b)
	for _, indep := range []int{0, 100, 10000} {
		for _, d := range bench.AllDesigns {
			b.Run(fmt.Sprintf("indep=%d/design=%s", indep, bench.Label(d)), func(b *testing.B) {
				runQueryBench(b, h, d, 10000, indep, 0, 0)
			})
		}
	}
}

// BenchmarkFig7DataAccess: passes over the 10,000-byte array swept,
// including the bounds-checked BC++ comparator.
func BenchmarkFig7DataAccess(b *testing.B) {
	h := harness(b)
	for _, dep := range []int{0, 1, 10} {
		for _, d := range bench.AllDesigns {
			b.Run(fmt.Sprintf("dep=%d/design=%s", dep, bench.Label(d)), func(b *testing.B) {
				runQueryBench(b, h, d, 10000, 0, dep, 0)
			})
		}
	}
}

// BenchmarkFig8Callbacks: callbacks per invocation swept; the isolated
// designs pay a full process round trip per callback.
func BenchmarkFig8Callbacks(b *testing.B) {
	h := harness(b)
	for _, ncb := range []int{0, 1, 10} {
		for _, d := range bench.AllDesigns {
			b.Run(fmt.Sprintf("ncb=%d/design=%s", ncb, bench.Label(d)), func(b *testing.B) {
				runQueryBench(b, h, d, 10000, 0, 0, ncb)
			})
		}
	}
}

// BenchmarkAblationJIT: the Jaguar VM with and without the
// closure-threaded JIT on the Fig. 6 compute workload.
func BenchmarkAblationJIT(b *testing.B) {
	for _, mode := range []struct {
		name string
		h    func(*testing.B) *bench.Harness
	}{
		{"jit", harness},
		{"interp", interpHarness},
	} {
		b.Run(mode.name, func(b *testing.B) {
			runQueryBench(b, mode.h(b), bench.DesignJNI, 10000, 1000, 0, 0)
		})
	}
}

// BenchmarkAblationVerifier: the load-time verification pipeline.
func BenchmarkAblationVerifier(b *testing.B) {
	classBytes, err := CompileJaguar(bench.GenericUDFSource, "BenchVerify")
	if err != nil {
		b.Fatal(err)
	}
	_ = classBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationVerifier(1, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFuel: cost of running under a (non-binding) fuel
// limit versus unlimited — the price of resource accounting.
func BenchmarkAblationFuel(b *testing.B) {
	h := harness(b)
	// The harness's VM always accounts fuel; this measures the compute
	// workload as the accounting-inclusive figure the resource manager
	// ships with (compare against Fig. 6 C++ for the total safety tax).
	b.Run("accounted", func(b *testing.B) {
		runQueryBench(b, h, bench.DesignJNI, 100, 1000, 0, 0)
	})
	b.Run("native-baseline", func(b *testing.B) {
		runQueryBench(b, h, bench.DesignCPP, 100, 1000, 0, 0)
	})
}

// BenchmarkAblationExecutorPool: fresh executor vs pooled reuse.
func BenchmarkAblationExecutorPool(b *testing.B) {
	if _, err := bench.AblationExecutorPool(1); err != nil {
		b.Skip("executors unavailable:", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationExecutorPool(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCallbackBatch: N single-byte callbacks vs one
// batched read (§2.5's batching hypothesis).
func BenchmarkAblationCallbackBatch(b *testing.B) {
	h := harness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationCallbackBatch(h, 256); err != nil {
			b.Fatal(err)
		}
	}
}
