// Command predator is the interactive SQL shell. It either connects to
// a predator-server (-addr) or opens a database file directly (-db).
//
//	predator -db stocks.db
//	predator -addr 127.0.0.1:5442
//
// Statements end with ';'. Shell commands: \q quits, \tables and
// \functions shortcut the SHOW statements.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"predator"
	"predator/internal/types"
)

// executor abstracts local vs remote execution for the shell.
type executor interface {
	exec(sql string) (*shellResult, error)
	close() error
}

type shellResult struct {
	schema   *types.Schema
	rows     []types.Row
	affected int64
	message  string
	plan     string
}

type localExec struct{ db *predator.DB }

func (l *localExec) exec(sql string) (*shellResult, error) {
	res, err := l.db.Exec(sql)
	if err != nil {
		return nil, err
	}
	return &shellResult{schema: res.Schema, rows: res.Rows, affected: res.RowsAffected, message: res.Message, plan: res.Plan}, nil
}

func (l *localExec) close() error { return l.db.Close() }

type remoteExec struct{ cl *predator.Client }

func (r *remoteExec) exec(sql string) (*shellResult, error) {
	res, err := r.cl.Exec(sql)
	if err != nil {
		return nil, err
	}
	return &shellResult{schema: res.Schema, rows: res.Rows, affected: res.RowsAffected, message: res.Message, plan: res.Plan}, nil
}

func (r *remoteExec) close() error { return r.cl.Close() }

func main() {
	predator.MaybeRunExecutor(nil)
	var (
		dbPath = flag.String("db", "", "open a database file directly (embedded mode)")
		addr   = flag.String("addr", "", "connect to a predator-server")
		user   = flag.String("user", os.Getenv("USER"), "user name for the session")
	)
	flag.Parse()

	var ex executor
	switch {
	case *dbPath != "" && *addr != "":
		fmt.Fprintln(os.Stderr, "predator: use either -db or -addr, not both")
		os.Exit(2)
	case *addr != "":
		cl, err := predator.Dial(*addr, *user)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predator: %v\n", err)
			os.Exit(1)
		}
		ex = &remoteExec{cl: cl}
		fmt.Printf("connected to %s\n", *addr)
	default:
		path := *dbPath
		if path == "" {
			path = "predator.db"
		}
		db, err := predator.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predator: %v\n", err)
			os.Exit(1)
		}
		ex = &localExec{db: db}
		fmt.Printf("opened %s\n", path)
	}
	defer ex.close()

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("predator> ")
		} else {
			fmt.Print("      ... ")
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, `\quit`, "exit", "quit":
			return
		case `\tables`:
			runStatement(ex, "SHOW TABLES")
			prompt()
			continue
		case `\functions`:
			runStatement(ex, "SHOW FUNCTIONS")
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		// A statement is complete at an unquoted trailing semicolon.
		if strings.HasSuffix(strings.TrimSpace(pending.String()), ";") {
			runStatement(ex, pending.String())
			pending.Reset()
		}
		prompt()
	}
}

func runStatement(ex executor, sql string) {
	res, err := ex.exec(sql)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	switch {
	case res.plan != "":
		fmt.Print(res.plan)
	case res.schema != nil:
		printTable(res.schema, res.rows)
		fmt.Printf("(%d rows)\n", len(res.rows))
	case res.message != "":
		fmt.Println(res.message)
	default:
		fmt.Printf("ok (%d rows affected)\n", res.affected)
	}
}

func printTable(schema *types.Schema, rows []types.Row) {
	headers := make([]string, schema.Arity())
	widths := make([]int, schema.Arity())
	for i, c := range schema.Columns {
		headers[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	line := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], p)
		}
		fmt.Println()
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range cells {
		line(row)
	}
}
