// Command udf-executor is a standalone UDF executor process speaking
// the isolate protocol on stdin/stdout. Servers normally re-execute
// their own binary as executors (so native UDF implementations are
// present on both sides); this standalone binary is for deployments
// that run only Jaguar (VM) UDFs in isolation, where no native table
// is needed.
package main

import (
	"fmt"
	"io"
	"os"

	"predator/internal/isolate"
)

func main() {
	if err := isolate.RunExecutor(os.Stdin, os.Stdout, nil); err != nil && err != io.EOF {
		fmt.Fprintf(os.Stderr, "udf-executor: %v\n", err)
		os.Exit(1)
	}
}
