// Command predator-server runs a PREDATOR-Go database server: one
// engine over TCP, one goroutine per client session. Clients issue SQL
// (including CREATE FUNCTION ... LANGUAGE JAGUAR) and can upload
// compiled Jaguar UDF classes.
//
// Usage:
//
//	predator-server -db /path/to/data.db -listen 127.0.0.1:5442
//
// Isolated UDFs (Designs 2/4) re-execute this binary as executor
// processes; no extra installation is needed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"predator"
)

func main() {
	// Must run before anything else: this process may be an executor.
	predator.MaybeRunExecutor(nil)

	var (
		dbPath   = flag.String("db", "predator.db", "database file")
		listen   = flag.String("listen", "127.0.0.1:5442", "listen address")
		pool     = flag.Int("buffer-pages", 4096, "buffer pool size in pages")
		fuel     = flag.Int64("udf-fuel", 100_000_000, "UDF instruction budget per invocation (0 = unlimited)")
		mem      = flag.Int64("udf-mem", 64<<20, "UDF allocation budget in bytes per invocation (0 = unlimited)")
		nojit    = flag.Bool("no-jit", false, "disable the Jaguar VM JIT (interpreter only)")
		verbose  = flag.Bool("v", false, "verbose connection logging")
		stmtTo   = flag.Duration("statement-timeout", 0, "default per-statement deadline (0 = none; sessions may SET STATEMENT_TIMEOUT)")
		readTo   = flag.Duration("read-timeout", 10*time.Minute, "per-connection idle read deadline (0 = none)")
		invokeTo = flag.Duration("udf-invoke-timeout", 2*time.Minute, "isolated UDF invocation deadline; expiry kills the executor (0 = none)")
		metrics  = flag.String("metrics-addr", "", "HTTP listen address serving Prometheus metrics at /metrics and profiles at /debug/pprof/ (empty = disabled)")
		durab    = flag.String("durability", "commit", "WAL fsync policy: none, commit or always")
		archDir  = flag.String("archive-dir", "", "directory for WAL segment archiving; enables BACKUP TO and point-in-time restore with predator-restore (empty = disabled)")
		scrubIv  = flag.Duration("scrub-interval", 0, "pause between background scrub passes over data pages and archived WAL segments (0 = scrubbing disabled)")
		traceDir = flag.String("trace-dir", "", "directory for Chrome trace-event JSON exports; enables SET TRACE = 'on' (empty = explicit paths only)")
		flightIv = flag.Duration("flight-sample", 10*time.Second, "flight-recorder metrics sampling interval; SIGQUIT or /debug/flightrecorder dumps the history (0 = sampling disabled)")
		slowQ    = flag.Duration("slow-query", 0, "log statements slower than this threshold (0 = disabled)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		maxConns  = flag.Int("max-conns", 0, "max concurrently connected clients; excess connections are shed with a retryable error (0 = unlimited)")
		maxQs     = flag.Int("max-queries", 0, "max concurrently executing statements; excess queries are shed with a retryable error (0 = unlimited)")
		admitWait = flag.Duration("admission-wait", 50*time.Millisecond, "how long an over-admitted query may wait for an execution slot before being shed (only with -max-queries)")
		maxSess   = flag.Int("max-sessions-per-user", 0, "max concurrently open sessions per user (0 = unlimited)")
		drainTo   = flag.Duration("drain-timeout", 15*time.Second, "grace for in-flight statements on SIGTERM/SIGINT before connections are cut (0 = immediate)")
		quotaMem  = flag.Int64("quota-mem", 0, "default per-tenant statement memory ceiling in bytes (0 = unlimited; sessions may SET QUOTA_MEMORY)")
		quotaCPU  = flag.Duration("quota-cpu", 0, "default per-tenant executor CPU budget per quota window (0 = unlimited; sessions may SET QUOTA_CPU)")
		quotaWin  = flag.Duration("quota-cpu-window", 0, "window over which -quota-cpu accumulates (0 = 1s)")
		fleetSize = flag.Int("fleet-size", 0, "run isolated UDFs on a shared fleet of this many multiplexed executor processes; process count stays O(cores) across all sessions (0 = one executor per UDF; inspect with SHOW EXECUTORS)")
	)
	flag.Parse()

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	predator.SetStructuredLogger(logger)

	logf := func(format string, args ...any) {
		if *verbose {
			logger.Info(fmt.Sprintf(format, args...), "component", "server")
		}
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "predator-server: trace dir: %v\n", err)
			os.Exit(1)
		}
	}
	opts := []predator.Option{
		predator.WithBufferPoolPages(*pool),
		predator.WithUDFLimits(predator.ResourceLimits{Fuel: *fuel, MaxAllocBytes: *mem}),
		predator.WithLogger(logf),
		predator.WithStatementTimeout(*stmtTo),
		predator.WithSupervision(predator.Supervision{InvokeTimeout: *invokeTo}),
		predator.WithDurability(*durab),
		predator.WithTraceDir(*traceDir),
		predator.WithSlowQueryThreshold(*slowQ),
		predator.WithTenantQuota(predator.TenantQuota{
			MemBytes:  *quotaMem,
			CPUTime:   *quotaCPU,
			CPUWindow: *quotaWin,
		}),
	}
	if *nojit {
		opts = append(opts, predator.WithJITDisabled())
	}
	if *archDir != "" {
		opts = append(opts, predator.WithArchiveDir(*archDir))
	}
	if *scrubIv > 0 {
		opts = append(opts, predator.WithScrubInterval(*scrubIv))
	}
	if *fleetSize > 0 {
		opts = append(opts, predator.WithFleetSize(*fleetSize))
	}
	start := time.Now()
	db, err := predator.Open(*dbPath, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predator-server: %v\n", err)
		os.Exit(1)
	}
	logger.Info("database open",
		"component", "server", "db", *dbPath, "duration", time.Since(start))
	if rec := db.Recovered(); rec.Ran {
		logger.Info("crash recovery replayed WAL",
			"component", "server", "records", rec.Records,
			"bytes", rec.Bytes, "torn_tail", rec.TornTail)
	}
	srv := predator.NewServerWith(db, predator.ServerOptions{
		Logf:                 logf,
		ReadTimeout:          *readTo,
		StatementTimeout:     *stmtTo,
		MaxConns:             *maxConns,
		MaxConcurrentQueries: *maxQs,
		AdmissionWait:        *admitWait,
		MaxSessionsPerUser:   *maxSess,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predator-server: %v\n", err)
		os.Exit(1)
	}
	logger.Info("serving", "component", "server", "db", *dbPath, "addr", addr)
	if *metrics != "" {
		go func() {
			logger.Info("metrics listener up",
				"component", "server", "metrics", "http://"+*metrics+"/metrics",
				"pprof", "http://"+*metrics+"/debug/pprof/")
			if err := predator.ServeMetrics(*metrics); err != nil {
				logger.Error("metrics listener failed", "component", "server", "error", err)
			}
		}()
	}

	if *flightIv > 0 {
		predator.StartFlightRecorder(*flightIv)
	}

	// SIGQUIT is the post-mortem trigger: the first one writes the
	// flight-recorder dump (process list, query history, metrics
	// samples) next to the database plus all goroutine stacks to
	// stderr, then restores the default handler so a second SIGQUIT
	// falls through to the Go runtime's fatal stack dump.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		signal.Reset(syscall.SIGQUIT)
		path := *dbPath + ".flight.json"
		if f, err := os.Create(path); err == nil {
			werr := predator.WriteFlightRecorder(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				logger.Error("flight dump failed", "component", "server", "path", path, "error", werr)
			} else {
				logger.Info("flight dump written", "component", "server", "path", path)
			}
		} else {
			logger.Error("flight dump failed", "component", "server", "path", path, "error", err)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		fmt.Fprintf(os.Stderr, "=== goroutine dump (SIGQUIT) ===\n%s\n", buf)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop accepting, let in-flight statements finish
	// (and their results reach clients) within the grace, then cut the
	// remaining connections. A second signal skips the grace.
	logger.Info("draining", "component", "server", "grace", *drainTo)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTo)
	go func() {
		<-sig
		logger.Info("second signal: aborting drain", "component", "server")
		cancel()
	}()
	err = srv.Shutdown(ctx)
	cancel()
	if err != nil {
		logger.Error("shutdown failed", "component", "server", "error", err)
		os.Exit(1)
	}
	logger.Info("shutdown complete", "component", "server")
}
