// Command predator-server runs a PREDATOR-Go database server: one
// engine over TCP, one goroutine per client session. Clients issue SQL
// (including CREATE FUNCTION ... LANGUAGE JAGUAR) and can upload
// compiled Jaguar UDF classes.
//
// Usage:
//
//	predator-server -db /path/to/data.db -listen 127.0.0.1:5442
//
// Isolated UDFs (Designs 2/4) re-execute this binary as executor
// processes; no extra installation is needed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predator"
)

func main() {
	// Must run before anything else: this process may be an executor.
	predator.MaybeRunExecutor(nil)

	var (
		dbPath   = flag.String("db", "predator.db", "database file")
		listen   = flag.String("listen", "127.0.0.1:5442", "listen address")
		pool     = flag.Int("buffer-pages", 4096, "buffer pool size in pages")
		fuel     = flag.Int64("udf-fuel", 100_000_000, "UDF instruction budget per invocation (0 = unlimited)")
		mem      = flag.Int64("udf-mem", 64<<20, "UDF allocation budget in bytes per invocation (0 = unlimited)")
		nojit    = flag.Bool("no-jit", false, "disable the Jaguar VM JIT (interpreter only)")
		verbose  = flag.Bool("v", false, "verbose connection logging")
		stmtTo   = flag.Duration("statement-timeout", 0, "default per-statement deadline (0 = none; sessions may SET STATEMENT_TIMEOUT)")
		readTo   = flag.Duration("read-timeout", 10*time.Minute, "per-connection idle read deadline (0 = none)")
		invokeTo = flag.Duration("udf-invoke-timeout", 2*time.Minute, "isolated UDF invocation deadline; expiry kills the executor (0 = none)")
		metrics  = flag.String("metrics-addr", "", "HTTP listen address serving Prometheus metrics at /metrics (empty = disabled)")
		durab    = flag.String("durability", "commit", "WAL fsync policy: none, commit or always")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if *verbose {
			log.Printf(format, args...)
		}
	}
	opts := []predator.Option{
		predator.WithBufferPoolPages(*pool),
		predator.WithUDFLimits(predator.ResourceLimits{Fuel: *fuel, MaxAllocBytes: *mem}),
		predator.WithLogger(logf),
		predator.WithStatementTimeout(*stmtTo),
		predator.WithSupervision(predator.Supervision{InvokeTimeout: *invokeTo}),
		predator.WithDurability(*durab),
	}
	if *nojit {
		opts = append(opts, predator.WithJITDisabled())
	}
	db, err := predator.Open(*dbPath, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predator-server: %v\n", err)
		os.Exit(1)
	}
	if rec := db.Recovered(); rec.Ran {
		log.Printf("predator-server: crash recovery replayed %d WAL records (%d bytes, torn tail: %v)",
			rec.Records, rec.Bytes, rec.TornTail)
	}
	srv := predator.NewServerWith(db, predator.ServerOptions{
		Logf:             log.Printf,
		ReadTimeout:      *readTo,
		StatementTimeout: *stmtTo,
	})
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predator-server: %v\n", err)
		os.Exit(1)
	}
	log.Printf("predator-server: serving %s on %s", *dbPath, addr)
	if *metrics != "" {
		go func() {
			log.Printf("predator-server: metrics on http://%s/metrics", *metrics)
			if err := predator.ServeMetrics(*metrics); err != nil {
				log.Printf("predator-server: metrics listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("predator-server: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("predator-server: shutdown: %v", err)
		os.Exit(1)
	}
}
