// Command predator-restore rebuilds a database file from an online
// base backup (BACKUP TO '<dir>') plus the WAL segment archive,
// optionally stopping at an exact point-in-time LSN.
//
// Usage:
//
//	predator-restore -backup /backups/monday -archive /wal-archive \
//	    -out /restore/data.db [-lsn 123456]
//
// With -lsn 0 (the default) the restore replays to the end of the
// contiguous archived history. A non-zero target must lie at or past
// the backup manifest's end_lsn (its consistency point) and within the
// archived history; statement-boundary targets come from SHOW STORAGE
// (current_lsn) or the backup manifest.
package main

import (
	"flag"
	"fmt"
	"os"

	"predator/internal/storage"
)

func main() {
	var (
		backup  = flag.String("backup", "", "base backup directory (created by BACKUP TO)")
		archive = flag.String("archive", "", "WAL segment archive directory (the server's -archive-dir)")
		out     = flag.String("out", "", "output database file to create")
		lsn     = flag.Int64("lsn", 0, "target LSN to restore to (0 = end of archived history)")
	)
	flag.Parse()
	if *backup == "" || *archive == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "predator-restore: -backup, -archive and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	if _, err := os.Stat(*out); err == nil {
		fmt.Fprintf(os.Stderr, "predator-restore: refusing to overwrite existing %s\n", *out)
		os.Exit(1)
	}
	info, err := storage.Restore(*backup, *archive, *out, *lsn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "predator-restore: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("restored %s to lsn %d (%d segments, %d records replayed)\n",
		*out, info.TargetLSN, info.Segments, info.Records)
}
