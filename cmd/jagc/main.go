// Command jagc is the Jaguar compiler: it compiles .jag source files
// to verified Jaguar class files (.jclass), the portable unit that
// moves between PREDATOR-Go clients and servers.
//
//	jagc udf.jag                 # writes udf.jclass
//	jagc -o out.jclass udf.jag   # explicit output
//	jagc -disasm udf.jag         # print the compiled bytecode
//	jagc -check udf.jag          # compile + verify only, write nothing
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"predator/internal/jaguar"
	"predator/internal/jvm"
)

func main() {
	var (
		out    = flag.String("o", "", "output class file (default: source with .jclass)")
		name   = flag.String("class", "", "class name (default: source file base name)")
		disasm = flag.Bool("disasm", false, "print disassembly instead of writing a file")
		check  = flag.Bool("check", false, "compile and verify only")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jagc [-o out.jclass] [-class Name] [-disasm] [-check] source.jag")
		os.Exit(2)
	}
	srcPath := flag.Arg(0)
	src, err := os.ReadFile(srcPath)
	if err != nil {
		fatal(err)
	}
	className := *name
	if className == "" {
		className = strings.TrimSuffix(filepath.Base(srcPath), filepath.Ext(srcPath))
	}
	cls, err := jaguar.Compile(string(src), className)
	if err != nil {
		fatal(err)
	}
	if err := cls.Verify(); err != nil {
		fatal(fmt.Errorf("internal error: compiler emitted unverifiable code: %w", err))
	}
	if *disasm {
		for i := range cls.Methods {
			fmt.Print(jvm.Disassemble(cls, &cls.Methods[i]))
		}
		return
	}
	if *check {
		fmt.Printf("%s: %d method(s), verified OK\n", className, len(cls.Methods))
		return
	}
	outPath := *out
	if outPath == "" {
		outPath = strings.TrimSuffix(srcPath, filepath.Ext(srcPath)) + ".jclass"
	}
	data := jvm.EncodeClass(cls)
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, %d method(s))\n", outPath, len(data), len(cls.Methods))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "jagc: %v\n", err)
	os.Exit(1)
}
