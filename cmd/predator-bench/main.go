// Command predator-bench regenerates the paper's evaluation: Table 1
// and Figures 4-8 of "Secure and Portable Database Extensibility"
// (SIGMOD 1998), plus the ablations documented in DESIGN.md.
//
//	predator-bench                        # quick run (1,000 rows)
//	predator-bench -full                  # the paper's 10,000-row scale
//	predator-bench -experiment fig7       # one experiment
//	predator-bench -experiment table1,fig5,fig8
//
// Experiments: table1 fig4 fig5 fig5batch fig6 fig7 fig8 jit verifier
// fuel pool cbbatch durability storage overload fleet inline obs, or
// "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"predator/internal/bench"
	"predator/internal/isolate"
)

func main() {
	isolate.MaybeRunExecutor(bench.Natives)
	var (
		experiment = flag.String("experiment", "all", "comma-separated experiment ids (or 'all')")
		full       = flag.Bool("full", false, "run the paper's full scale (10,000 rows/calls; slow)")
		rows       = flag.Int("rows", 0, "override relation cardinality")
		calls      = flag.Int("calls", 0, "override UDF invocation count")
		dir        = flag.String("dir", "", "workspace directory (default: temp)")
		jsonDir    = flag.String("json-dir", ".", "directory for machine-readable BENCH_<experiment>.json files (empty = disabled)")
		assertUp   = flag.Float64("assert-batch-speedup", 0, "fail unless the fig5batch IC++ batched/unbatched speedup reaches this factor")
		assertInl  = flag.Float64("assert-inline-speedup", 0, "fail unless the inline experiment's inlined/vm speedup reaches this factor (and inlined beats isolated-batched)")
		assertObs  = flag.Float64("assert-obs-overhead", 0, "fail unless the obs experiment's recording-on/off p50 ratio stays at or below this factor (e.g. 1.03 = within 3%)")
		traceDir   = flag.String("trace-dir", "", "export a Chrome trace of an isolated-UDF query into this directory (empty = disabled)")
	)
	flag.Parse()

	cfg := bench.Config{Dir: *dir, Rows: 1000}
	ax := bench.QuickAxes()
	if *full {
		cfg.Rows = 10000
		ax = bench.FullAxes()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *calls > 0 {
		cfg.Calls = *calls
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	fmt.Printf("predator-bench: rows=%d calls=%d (designs: %s)\n",
		cfg.Rows, effectiveCalls(cfg), strings.Join(labels(), ", "))
	fmt.Printf("started %s\n\n", time.Now().Format(time.RFC3339))

	writeJSON := func(t *bench.Table) {
		if *jsonDir == "" {
			return
		}
		path, err := t.WriteJSON(*jsonDir)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(wrote %s)\n\n", path)
	}

	if sel("table1") {
		t := bench.Table1()
		fmt.Println(t.Render())
		writeJSON(t)
	}

	needHarness := sel("fig4") || sel("fig5") || sel("fig5batch") || sel("fig6") ||
		sel("fig7") || sel("fig8") || sel("jit") || sel("cbbatch")
	var h *bench.Harness
	if needHarness {
		var err error
		start := time.Now()
		h, err = bench.NewHarness(cfg)
		if err != nil {
			fatal(err)
		}
		defer h.Close()
		if err := h.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("(workload built and cross-verified in %s: all 5 designs agree)\n\n", time.Since(start).Round(time.Millisecond))
	}

	show := func(t *bench.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
		writeJSON(t)
	}
	show2 := func(a, r *bench.Table, err error) {
		if err != nil {
			fatal(err)
		}
		fmt.Println(a.Render())
		writeJSON(a)
		fmt.Println(r.Render())
		writeJSON(r)
	}

	if sel("fig4") {
		show(bench.Fig4(h, ax))
	}
	if sel("fig5") {
		show(bench.Fig5(h, ax))
	}
	if sel("fig5batch") {
		tbl, speedup, err := bench.Fig5Batch(h)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Render())
		fmt.Print(bench.BatchSpeedupSummary(speedup))
		fmt.Println()
		writeJSON(tbl)
		if *assertUp > 0 {
			got := speedup[bench.DesignICPP]
			if got < *assertUp {
				fatal(fmt.Errorf("fig5batch: IC++ batched speedup %.2fx below required %.2fx", got, *assertUp))
			}
			fmt.Printf("(batch speedup assertion passed: %.2fx >= %.2fx)\n\n", got, *assertUp)
		}
	}
	if sel("fig6") {
		show2(bench.Fig6(h, ax))
	}
	if sel("fig7") {
		show2(bench.Fig7(h, ax))
	}
	if sel("fig8") {
		show2(bench.Fig8(h, ax))
	}
	if sel("jit") {
		nojit, err := bench.NewHarness(bench.Config{Dir: "", Rows: cfg.Rows, Calls: cfg.Calls, DisableJIT: true})
		if err != nil {
			fatal(err)
		}
		// The interpreter at the full Fig. 6 axis would take minutes per
		// point; the ablation uses the quick axis at any scale.
		tbl, err := bench.AblationJIT(h, nojit, bench.QuickAxes().Fig6Indep)
		nojit.Close()
		show(tbl, err)
	}
	if sel("verifier") {
		show(bench.AblationVerifier(1000, effectiveCalls(cfg)))
	}
	if sel("fuel") {
		show(bench.AblationFuel([]int64{1000, 100000, 10000000}))
	}
	if sel("pool") {
		show(bench.AblationExecutorPool(200))
	}
	if sel("cbbatch") {
		show(bench.AblationCallbackBatch(h, 1000))
	}
	if sel("durability") {
		// Scaled down: each row is an fsync under commit/always.
		show(bench.DurabilityOverhead(cfg.Rows / 2))
	}
	if sel("storage") {
		// Scaled down like durability: every row pays a commit fsync.
		show(bench.StorageResilience(cfg.Rows / 2))
	}
	if sel("overload") {
		perCell := 300 * time.Millisecond
		if *full {
			perCell = 2 * time.Second
		}
		show(bench.OverloadShedding(perCell))
	}
	if sel("fleet") {
		perCell := 300 * time.Millisecond
		if *full {
			perCell = 2 * time.Second
		}
		show(bench.FleetMultiplexing(perCell))
	}
	if sel("inline") {
		perCell := 300 * time.Millisecond
		if *full {
			perCell = 2 * time.Second
		}
		tbl, speedup, err := bench.UDFInlining(perCell)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("inlined speedup: %.2fx over vm, %.2fx over isolated-batched, %.2fx over fleet\n\n",
			speedup["vm"], speedup["isolated-batched"], speedup["fleet"])
		writeJSON(tbl)
		if *assertInl > 0 {
			if got := speedup["vm"]; got < *assertInl {
				fatal(fmt.Errorf("inline: inlined/vm speedup %.2fx below required %.2fx", got, *assertInl))
			}
			if got := speedup["isolated-batched"]; got < 1 {
				fatal(fmt.Errorf("inline: inlined slower than isolated-batched (%.2fx)", got))
			}
			fmt.Printf("(inline speedup assertion passed: %.2fx >= %.2fx over vm, %.2fx over isolated-batched)\n\n",
				speedup["vm"], *assertInl, speedup["isolated-batched"])
		}
	}
	if sel("obs") {
		stmts, trials := 150, 10
		if *full {
			stmts, trials = 300, 16
		}
		tbl, ratios, err := bench.ObserverOverhead(stmts, trials)
		if err != nil {
			fatal(err)
		}
		fmt.Println(tbl.Render())
		fmt.Printf("flight-recorder p50 overhead: %.3fx (on/off)\n\n", ratios["p50_ratio"])
		writeJSON(tbl)
		if *assertObs > 0 {
			if got := ratios["p50_ratio"]; got > *assertObs {
				fatal(fmt.Errorf("obs: recording-on p50 %.3fx exceeds allowed %.3fx", got, *assertObs))
			}
			fmt.Printf("(obs overhead assertion passed: %.3fx <= %.3fx)\n\n", ratios["p50_ratio"], *assertObs)
		}
	}
	if *traceDir != "" && h != nil {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*traceDir, "trace-icpp.json")
		if err := h.ExportTrace(bench.DesignICPP, 100, 20, path); err != nil {
			fatal(err)
		}
		fmt.Printf("(wrote cross-process trace %s; load it in chrome://tracing)\n\n", path)
	}
	st := isolate.ReadStats()
	fmt.Printf("executor supervision: starts=%d invocations=%d timeouts=%d kills=%d restarts=%d evictions=%d\n",
		st.Starts, st.Invocations, st.Timeouts, st.Kills, st.Restarts, st.Evictions)
	fmt.Printf("finished %s\n", time.Now().Format(time.RFC3339))
}

func effectiveCalls(cfg bench.Config) int {
	if cfg.Calls > 0 && cfg.Calls < cfg.Rows {
		return cfg.Calls
	}
	return cfg.Rows
}

func labels() []string {
	out := make([]string, len(bench.AllDesigns))
	for i, d := range bench.AllDesigns {
		out[i] = bench.Label(d)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "predator-bench: %v\n", err)
	os.Exit(1)
}
